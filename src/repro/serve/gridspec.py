"""Declarative sweep-grid requests and their canonical form.

The service accepts grids as plain JSON (the ``POST /v1/sweeps`` body)
rather than CLI flags, so remote submission is *declarative*: everything
that determines the simulation outcome is data, validated up front, and
the normalised spec — not the raw request — is what gets journaled,
hashed into the job id, and expanded into :class:`~repro.parallel.
SweepTask` points.  Expansion goes through the same
:func:`~repro.parallel.sweep.build_grid` the ``repro sweep`` CLI uses,
which is what makes served results byte-identical to local sweeps for
the same grid (outside the merged artifact's ``context`` section).

A request::

    {
      "benchmarks": ["comp", "gcc"],      # default: the full suite
      "instructions": 20000,
      "knob": "n", "values": [4, 10],     # optional SSMTConfig sweep
      "widths": [8, 16],                  # optional machine widths
      "predictor": "tage",                # optional zoo baseline
      "kernel": "batched",                # default "scalar"
      "sample": {"interval": 10000,       # optional sampled simulation
                 "warmup": 2000}
    }

Validation failures raise :class:`GridSpecError` carrying the offending
field, which the HTTP layer renders as a structured 400 — before the
request touches the job queue.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.parallel.sweep import build_grid, parse_knob_value
from repro.parallel.taskkey import SweepTask, canonical_json
from repro.workloads import BENCHMARK_NAMES

#: Request keys the service understands; anything else is a typo we
#: reject rather than silently ignore (a misspelled knob would otherwise
#: simulate the wrong grid).
KNOWN_KEYS = ("benchmarks", "instructions", "knob", "values", "widths",
              "predictor", "kernel", "sample")

#: Default dynamic-instruction budget per point when a request omits it.
DEFAULT_INSTRUCTIONS = 20_000


class GridSpecError(ValueError):
    """A submit payload failed validation; ``field`` names the culprit."""

    def __init__(self, field: str, message: str):
        super().__init__(message)
        self.field = field
        self.message = message

    def as_dict(self) -> Dict[str, Any]:
        return {"code": "invalid_request", "field": self.field,
                "message": self.message}


def _require_int(value: Any, field: str, minimum: int = 1) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise GridSpecError(field, f"{field} must be an integer, got "
                                   f"{type(value).__name__}")
    if value < minimum:
        raise GridSpecError(field, f"{field} must be >= {minimum}, got "
                                   f"{value}")
    return value


def normalise_spec(payload: Any,
                   max_instructions: Optional[int] = None) -> Dict[str, Any]:
    """Validate a submit payload into the canonical grid spec.

    The canonical spec is a plain-JSON dict with every field present
    (defaults filled in), suitable for journaling and for hashing into
    the job id.  Two requests that mean the same grid normalise to the
    same spec — and therefore to the same job.
    """
    if not isinstance(payload, dict):
        raise GridSpecError("", f"request body must be a JSON object, got "
                                f"{type(payload).__name__}")
    for key in payload:
        if key not in KNOWN_KEYS:
            raise GridSpecError(key, f"unknown field {key!r} (known: "
                                     f"{', '.join(KNOWN_KEYS)})")

    benchmarks = payload.get("benchmarks")
    if benchmarks is None:
        benchmarks = list(BENCHMARK_NAMES)
    if (not isinstance(benchmarks, list) or not benchmarks
            or not all(isinstance(b, str) for b in benchmarks)):
        raise GridSpecError("benchmarks", "benchmarks must be a non-empty "
                                          "list of benchmark names")
    for name in benchmarks:
        if name not in BENCHMARK_NAMES:
            raise GridSpecError("benchmarks", f"unknown benchmark {name!r}")

    instructions = payload.get("instructions", DEFAULT_INSTRUCTIONS)
    instructions = _require_int(instructions, "instructions")
    if max_instructions is not None and instructions > max_instructions:
        raise GridSpecError("instructions",
                            f"instructions {instructions} exceeds this "
                            f"server's per-point limit {max_instructions}")

    knob = payload.get("knob")
    raw_values = payload.get("values", [])
    if knob is not None and not isinstance(knob, str):
        raise GridSpecError("knob", "knob must be an SSMTConfig field name")
    if not isinstance(raw_values, list):
        raise GridSpecError("values", "values must be a list")
    if raw_values and knob is None:
        raise GridSpecError("values", "values requires knob")
    values: List[Any] = []
    if knob is not None:
        for raw in raw_values:
            try:
                # parse_knob_value validates against the field's type;
                # non-string JSON values round-trip through json.dumps
                # ('true', '4', '0.1') so both forms are accepted.
                values.append(parse_knob_value(
                    knob, raw if isinstance(raw, str) else json.dumps(raw)))
            except ValueError as error:
                raise GridSpecError("values", str(error))

    widths = payload.get("widths", [])
    if not isinstance(widths, list):
        raise GridSpecError("widths", "widths must be a list of integers")
    widths = [_require_int(w, "widths") for w in widths]

    predictor = payload.get("predictor")
    if predictor is not None:
        if not isinstance(predictor, str):
            raise GridSpecError("predictor", "predictor must be a zoo "
                                             "baseline name")
        # Deferred import: requests without a predictor never touch the
        # zoo (same zero-cost rule as the CLI).
        from repro.branch.zoo import ARENA_BASELINES
        if predictor not in ARENA_BASELINES:
            raise GridSpecError(
                "predictor", f"unknown predictor {predictor!r}; choose "
                             f"from {', '.join(sorted(ARENA_BASELINES))}")

    kernel = payload.get("kernel", "scalar")
    if kernel not in ("scalar", "batched"):
        raise GridSpecError("kernel", f"kernel must be 'scalar' or "
                                      f"'batched', got {kernel!r}")

    sample = payload.get("sample")
    if sample is not None:
        if not isinstance(sample, dict):
            raise GridSpecError("sample", "sample must be an object with "
                                          "'interval' (and optional "
                                          "'warmup')")
        unknown = set(sample) - {"interval", "warmup"}
        if unknown:
            raise GridSpecError("sample", f"unknown sample field(s): "
                                          f"{', '.join(sorted(unknown))}")
        interval = _require_int(sample.get("interval"), "sample.interval")
        warmup = _require_int(sample.get("warmup", 2000), "sample.warmup",
                              minimum=0)
        try:
            _build_sample_spec(interval, warmup)
        except ValueError as error:
            raise GridSpecError("sample", str(error))
        sample = {"interval": interval, "warmup": warmup}

    return {
        "benchmarks": list(benchmarks),
        "instructions": instructions,
        "knob": knob,
        "values": values,
        "widths": widths,
        "predictor": predictor,
        "kernel": kernel,
        "sample": sample,
    }


def _build_sample_spec(interval: int, warmup: int) -> Any:
    from repro.kernel.sampling import SampleSpec

    return SampleSpec(interval=interval, warmup=warmup)


def spec_tasks(spec: Dict[str, Any]) -> List[SweepTask]:
    """Expand a canonical spec into sweep tasks — exactly the grid the
    ``repro sweep`` CLI would build for the equivalent flags."""
    predictor = None
    if spec["predictor"] is not None:
        from repro.branch.zoo import ARENA_BASELINES
        predictor = ARENA_BASELINES[spec["predictor"]]
    sample = None
    if spec["sample"] is not None:
        sample = _build_sample_spec(spec["sample"]["interval"],
                                    spec["sample"]["warmup"])
    return build_grid(spec["benchmarks"], spec["instructions"],
                      knob=spec["knob"], values=spec["values"],
                      widths=tuple(spec["widths"]),
                      predictor=predictor,
                      kernel=spec["kernel"], sample=sample)


def spec_job_id(spec: Dict[str, Any]) -> str:
    """Deterministic job id: content hash of the canonical spec.

    Identical grids — submitted by any tenant, any number of times —
    share one job id and therefore one execution (the dedup property the
    service tests pin down).
    """
    blob = canonical_json(spec).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]
