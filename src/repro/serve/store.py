"""Result-store backends beyond the local-disk cache.

The backend interface is :class:`repro.parallel.cache.ResultStore`;
the sweep runner, the service, and the CLI all speak it.  This module
adds the non-disk backends and the factory that picks one from a
configuration string:

* ``mem://`` — :class:`MemoryResultStore`, an in-process dict.  Results
  die with the server; useful for tests and for throwaway servers whose
  durability comes from the job journal instead.
* anything else — a filesystem path for the battle-tested
  :class:`~repro.parallel.cache.ResultCache` disk backend.

Remote object stores (the "million users" direction in the ROADMAP)
slot in here later: subclass :class:`ResultStore`, keep the
miss-never-error contract, add a URL scheme to :func:`make_store`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.parallel.cache import POINT_SCHEMA, ResultCache, ResultStore


class MemoryResultStore(ResultStore):
    """In-process content-addressed store (no durability, no I/O)."""

    def __init__(self) -> None:
        self._data: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._data.get(key)
        if payload is None:
            self.misses += 1
            return None
        if (payload.get("schema") != POINT_SCHEMA
                or payload.get("task_key") != key):
            # Same contract as the disk backend: foreign or mismatched
            # entries read as misses, never as errors.
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        self.check_key(key, payload)
        self._data[key] = payload
        self.writes += 1

    def __len__(self) -> int:
        return len(self._data)


def make_store(spec: str) -> ResultStore:
    """A store from a configuration string: ``mem://`` or a disk path."""
    if spec == "mem://":
        return MemoryResultStore()
    if "://" in spec:
        raise ValueError(f"unknown result-store scheme {spec!r} "
                         f"(supported: 'mem://' or a directory path)")
    return ResultCache(spec)


def store_stats(store: ResultStore) -> Dict[str, int]:
    """The observability counters every backend maintains."""
    return {
        "entries": len(store),
        "hits": store.hits,
        "misses": store.misses,
        "writes": store.writes,
        "invalid": store.invalid,
    }
