"""The sweep service core: queue + scheduler + store + runner, no HTTP.

:class:`SweepService` is the transport-agnostic engine behind the
``repro serve`` API.  The HTTP layer (:mod:`repro.serve.http`) is a thin
adapter over these methods, and the test suite drives the service
directly — failure-path behaviour is pinned down without sockets.

Execution model
---------------

One dispatcher thread runs :meth:`step` in a loop.  Each step takes the
next job from the :class:`~repro.serve.scheduler.FairScheduler`, slices
off one *shard* (``shard_size`` pending tasks), and runs it through a
:class:`~repro.parallel.SweepRunner` wired to the shared
:class:`~repro.parallel.ResultStore`.  Sharding is what makes the
round-robin fair: a giant grid yields the dispatcher back after every
shard instead of monopolising it.

Durability splits in two, by design:

* the **journal** (:class:`~repro.serve.jobs.JobQueue`) is authoritative
  for task *states* — it survives crashes and drives resume;
* the **store** is authoritative for task *results* — content-addressed
  by the same keys ``repro sweep`` uses, so the service and the CLI
  share a cache, and a re-run shard turns completed work into hits.

The per-job event feeds (:meth:`events_since`) are advisory streaming
telemetry in the ``repro.obs`` style: cache hits, dispatches,
completions, heartbeats, stalls, rebuilds.  They are held in memory
only; clients that reconnect after a server restart re-read job *status*
from the journal, not the stream.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.parallel.cache import ResultStore
from repro.parallel.runner import SweepRunner
from repro.parallel.sweep import merge_sweep
from repro.parallel.taskkey import SweepTask
from repro.serve.gridspec import normalise_spec, spec_job_id, spec_tasks
from repro.serve.jobs import Job, JobQueue
from repro.serve.scheduler import FairScheduler, TokenBucket
from repro.serve.store import store_stats

#: Cap on buffered stream events per job (oldest dropped first); status
#: and results are journal/store-backed, so the stream may be lossy.
MAX_EVENTS_PER_JOB = 10_000


class RateLimitError(Exception):
    """Tenant exceeded its submit rate; rendered as HTTP 429."""

    def __init__(self, tenant: str):
        super().__init__(f"tenant {tenant!r} exceeded its submit rate")
        self.tenant = tenant


@dataclass
class ServiceConfig:
    """Operator knobs; defaults suit a small local deployment."""

    jobs: Optional[int] = None    # SweepRunner workers per shard
                                  # (None: $REPRO_JOBS or serial)
    shard_size: int = 8           # tasks per scheduler turn
    heartbeat: float = 2.0        # stream heartbeat interval (seconds)
    rate: float = 0.0             # submits/second/tenant (0 = unlimited)
    burst: int = 10               # rate-limit burst size
    max_instructions: Optional[int] = None  # per-point cap (None = off)
    resume: bool = True           # read the store before simulating
    task_timeout: Optional[float] = None
    max_retries: int = 1


class _ShardObserver:
    """Duck-typed SweepRunner observer → per-job stream events."""

    def __init__(self, service: "SweepService", job_id: str,
                 heartbeat_interval: float):
        self._service = service
        self._job_id = job_id
        self.heartbeat_interval = heartbeat_interval

    def _emit(self, ev: str, **payload: Any) -> None:
        self._service._emit(self._job_id, dict(payload, ev=ev))

    def on_cache_hit(self, task: SweepTask) -> None:
        self._emit("cache_hit", key=task.key, label=task.label)

    def on_cache_miss(self, task: SweepTask) -> None:
        self._emit("cache_miss", key=task.key, label=task.label)

    def on_dispatch(self, task: SweepTask) -> None:
        self._emit("dispatch", key=task.key, label=task.label)

    def on_task_done(self, task: SweepTask) -> None:
        self._emit("task_done", key=task.key, label=task.label)

    def on_task_failed(self, task: SweepTask, reason: str) -> None:
        self._emit("task_failed", key=task.key, label=task.label,
                   reason=reason)

    def on_heartbeat(self, done: int, total: int, inflight: int,
                     waited: float) -> None:
        self._emit("heartbeat", done=done, total=total, inflight=inflight,
                   waited=round(waited, 3))

    def on_stall(self, keys: List[str], timeout: Optional[float]) -> None:
        self._emit("stall", keys=list(keys), timeout=timeout)

    def on_rebuild(self, count: int) -> None:
        self._emit("rebuild", count=count)


class SweepService:
    """Queue-backed sweep execution; see module docstring."""

    def __init__(self, queue_dir: str, store: ResultStore,
                 config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.store = store
        self.queue = JobQueue(queue_dir)
        self.scheduler = FairScheduler()
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._event_seq: Dict[str, int] = {}
        self._event_cond = threading.Condition(self._lock)
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.shards_run = 0
        # Crash recovery: journal replay already reverted orphaned
        # "running" tasks to queued; put every unfinished job back on
        # the schedule so the dispatcher resumes them.
        for job in self.queue.incomplete():
            self.scheduler.enqueue(job.tenant, job.job_id)

    # -- events ---------------------------------------------------------------

    def _emit(self, job_id: str, event: Dict[str, Any]) -> None:
        with self._event_cond:
            seq = self._event_seq.get(job_id, 0) + 1
            self._event_seq[job_id] = seq
            feed = self._events.setdefault(job_id, [])
            feed.append(dict(event, seq=seq))
            if len(feed) > MAX_EVENTS_PER_JOB:
                del feed[: len(feed) - MAX_EVENTS_PER_JOB]
            self._event_cond.notify_all()

    def events_since(self, job_id: str, after: int,
                     timeout: float) -> Tuple[List[Dict[str, Any]], bool]:
        """Stream events with ``seq > after``; blocks up to ``timeout``.

        Returns ``(events, settled)`` where ``settled`` tells streaming
        clients the job finished and no further events will arrive.
        An empty event list after the wait means "nothing new yet" —
        the HTTP layer turns that into a stream heartbeat line.
        """
        deadline = time.monotonic() + timeout
        with self._event_cond:
            while True:
                fresh = [e for e in self._events.get(job_id, ())
                         if e["seq"] > after]
                job = self.queue.get(job_id)
                settled = job is not None and job.state != "running"
                if fresh or settled:
                    return fresh, settled and not fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], False
                self._event_cond.wait(remaining)

    # -- API surface ----------------------------------------------------------

    def submit(self, payload: Any, tenant: str = "public",
               now: Optional[float] = None) -> Dict[str, Any]:
        """Validate and enqueue a grid; idempotent per canonical spec.

        Order matters and is load-bearing for the failure-path tests:
        rate limit first (cheap, per-tenant), then validation (a 4xx
        must not touch the queue or journal), then the dedup-or-create
        against the job table.
        """
        clock = time.monotonic() if now is None else now
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.config.rate, self.config.burst)
                self._buckets[tenant] = bucket
            if not bucket.try_take(clock):
                raise RateLimitError(tenant)

        spec = normalise_spec(payload,
                              max_instructions=self.config.max_instructions)
        tasks = spec_tasks(spec)
        keys: List[str] = []
        seen = set()
        for task in tasks:
            if task.key not in seen:
                seen.add(task.key)
                keys.append(task.key)
        job_id = spec_job_id(spec)

        with self._lock:
            job, created = self.queue.submit(job_id, tenant, spec, keys)
            if job.state == "running" and job.pending_keys():
                self.scheduler.enqueue(job.tenant, job_id)
        if created:
            self._emit(job_id, {"ev": "job_submitted", "tenant": tenant,
                                "tasks": len(keys)})
        self._wake.set()
        return {
            "job": job_id,
            "created": created,
            "state": job.state,
            "total_tasks": len(job.task_keys),
            "grid_points": len(tasks),
        }

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self.queue.get(job_id)
            return None if job is None else job.as_dict()

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The merged ``repro.sweep/1`` artifact for a settled job.

        Raises :class:`JobNotSettledError` while work is pending (HTTP
        409); returns ``None`` for unknown jobs.  Points are re-read
        from the store in grid order and merged through the same
        :func:`~repro.parallel.sweep.merge_sweep` the CLI uses — byte
        identity with ``repro sweep`` outside ``context`` follows.
        """
        with self._lock:
            job = self.queue.get(job_id)
        if job is None:
            return None
        if job.state == "running":
            raise JobNotSettledError(job_id, job.counts())
        tasks = spec_tasks(job.spec)
        results: List[Optional[Dict[str, Any]]] = []
        for task in tasks:
            payload = self._peek(task.key)
            results.append(None if payload is None
                           else dict(payload, label=task.label))
        context = {
            "source": "repro.serve",
            "job": job_id,
            "spec": job.spec,
            "grid_points": len(tasks),
            "counts": job.counts(),
        }
        return merge_sweep(results, context=context, errors=job.failures)

    def task(self, key: str) -> Optional[Dict[str, Any]]:
        """Content-addressed point lookup straight from the store."""
        return self._peek(key)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            queue_stats = self.queue.stats()
            scheduled = len(self.scheduler)
        return {
            "store": store_stats(self.store),
            "queue": queue_stats,
            "scheduled_jobs": scheduled,
            "shards_run": self.shards_run,
        }

    def _peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Read a payload without perturbing the store's hit/miss
        counters — API reads are not cache traffic, and the loadtest
        derives hit rates from counter deltas."""
        before = (self.store.hits, self.store.misses, self.store.invalid)
        payload = self.store.get(key)
        self.store.hits, self.store.misses, self.store.invalid = before
        return payload

    # -- dispatcher -----------------------------------------------------------

    def step(self) -> bool:
        """Run one shard of the next scheduled job; False when idle."""
        with self._lock:
            job_id = self.scheduler.next_job()
            if job_id is None:
                return False
            job = self.queue.jobs[job_id]
            pending = job.pending_keys()
            shard_keys = pending[: self.config.shard_size]
            for key in shard_keys:
                self.queue.mark_task(job_id, key, "running")
        if not shard_keys:
            self._finish(job)
            return True

        by_key: Dict[str, SweepTask] = {}
        for task in spec_tasks(job.spec):
            by_key.setdefault(task.key, task)
        shard = [by_key[key] for key in shard_keys]

        observer = _ShardObserver(self, job_id, self.config.heartbeat)
        runner = SweepRunner(jobs=self.config.jobs,
                             cache=self.store,
                             resume=self.config.resume,
                             task_timeout=self.config.task_timeout,
                             max_retries=self.config.max_retries,
                             observer=observer)
        outcome = runner.run(shard)

        with self._lock:
            for task, payload in zip(shard, outcome.results):
                if payload is not None:
                    self.queue.mark_task(job_id, task.key, "done")
                else:
                    reason = outcome.errors.get(
                        task.key,
                        outcome.errors.get("__pool__", "no result"))
                    self.queue.mark_task(job_id, task.key, "failed", reason)
            self.shards_run += 1
            remaining = bool(job.pending_keys())
            if remaining:
                self.scheduler.requeue(job.tenant, job_id)
        self._emit(job_id, {"ev": "shard_done",
                            "shard_tasks": len(shard),
                            "simulated": outcome.simulated,
                            "cache_hits": outcome.cache_hits,
                            "failures": outcome.failures})
        if not remaining:
            self._finish(job)
        return True

    def _finish(self, job: Job) -> None:
        if not job.settled():
            # Defensive: should not happen with a single dispatcher.
            with self._lock:
                self.scheduler.requeue(job.tenant, job.job_id)
            return
        state = "failed" if job.failures else "done"
        # Emit before flipping the job state: streamers treat a settled
        # job as end-of-stream, so the terminal event must already be
        # in the feed when they observe the flip.
        self._emit(job.job_id, {"ev": "job_" + state,
                                "counts": job.counts()})
        with self._event_cond:
            if job.state == "running":
                self.queue.mark_job(job.job_id, state)
            self._event_cond.notify_all()

    def drain(self) -> int:
        """Run steps until idle; returns shards run.  Test/CLI helper —
        the server uses the background dispatcher instead."""
        shards = 0
        while self.step():
            shards += 1
        return shards

    # -- background dispatcher ------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-dispatcher",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            if not self.step():
                self._wake.wait(timeout=0.2)
                self._wake.clear()


class JobNotSettledError(Exception):
    """Result requested for a job that still owes work (HTTP 409)."""

    def __init__(self, job_id: str, counts: Dict[str, int]):
        super().__init__(f"job {job_id} still running: {counts}")
        self.job_id = job_id
        self.counts = counts
