"""Fair scheduling and rate limiting for the sweep service.

Two small, deterministic-given-time primitives:

* :class:`TokenBucket` — per-tenant submit rate limiting.  The caller
  supplies the clock reading (monotonic seconds), so the bucket itself
  never reads a clock and tests can drive it with synthetic time.
* :class:`FairScheduler` — round-robin *across tenants*, FIFO within a
  tenant.  The dispatcher runs one shard (``shard_size`` tasks) of the
  chosen job per turn, so a tenant with a 10 000-point grid cannot
  starve a tenant with a 4-point grid: after each shard the big job goes
  to the back of its tenant's queue and the next tenant gets a turn.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_take(now)`` consumes one token if available.  ``rate <= 0``
    disables limiting (always allows).
    """

    def __init__(self, rate: float, burst: int):
        self.rate = rate
        self.burst = max(1, burst)
        self.tokens = float(self.burst)
        self.last: Optional[float] = None

    def try_take(self, now: float) -> bool:
        if self.rate <= 0:
            return True
        if self.last is not None:
            self.tokens = min(float(self.burst),
                              self.tokens + (now - self.last) * self.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class FairScheduler:
    """Round-robin over tenants; FIFO job order within each tenant."""

    def __init__(self) -> None:
        # Tenant iteration order is insertion order; _turn rotates it.
        self._queues: "OrderedDict[str, Deque[str]]" = OrderedDict()
        self._turn: Deque[str] = deque()
        self._enqueued: Dict[str, str] = {}  # job_id -> tenant

    def enqueue(self, tenant: str, job_id: str) -> None:
        """Add a job to its tenant's queue (no-op if already queued)."""
        if job_id in self._enqueued:
            return
        if tenant not in self._queues:
            self._queues[tenant] = deque()
            self._turn.append(tenant)
        self._queues[tenant].append(job_id)
        self._enqueued[job_id] = tenant

    def next_job(self) -> Optional[str]:
        """Pop the next job to run a shard of, rotating tenants."""
        for _ in range(len(self._turn)):
            tenant = self._turn[0]
            self._turn.rotate(-1)
            queue = self._queues.get(tenant)
            if queue:
                job_id = queue.popleft()
                del self._enqueued[job_id]
                return job_id
        return None

    def requeue(self, tenant: str, job_id: str) -> None:
        """Put a partially-run job at the *back* of its tenant's queue
        (its shard just ran; other jobs of the tenant go first)."""
        self.enqueue(tenant, job_id)

    def __len__(self) -> int:
        return len(self._enqueued)
