"""Persistent job queue with a JSONL journal (``repro.serve.job/1``).

A *job* is one submitted grid: a canonical spec (see
:mod:`repro.serve.gridspec`), the task keys it expands to, and a state
per task.  The queue journals every transition to an append-only JSONL
file, so a server that dies mid-grid resumes idempotently:

* on boot the journal is replayed into the in-memory job table;
* tasks that were ``running`` when the process died revert to
  ``queued`` (the worker is gone; the simulation is deterministic, so
  re-running is always safe);
* tasks whose results already landed in the content-addressed store are
  cache hits when their shard re-runs — nothing is simulated twice.

This is the journaled generalisation of the sweep runner's bounded
pool-rebuild logic: the runner still rebuilds crashed pools *within* a
shard, and the queue replays *across* process lifetimes.

Journal layout (one JSON object per line)::

    {"schema": "repro.serve.job/1", "ev": "header"}
    {"ev": "submit", "job": id, "tenant": t, "spec": {...},
     "tasks": [key, ...]}
    {"ev": "task", "job": id, "key": key,
     "state": "running" | "done" | "failed", "reason": ...}
    {"ev": "job", "job": id, "state": "done" | "failed"}

Unknown or torn trailing lines are skipped on replay (a crash mid-append
must not brick the queue).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.schemas import schema_string

#: Schema marker carried by the journal's header line.
JOB_SCHEMA = schema_string("repro.serve.job", 1)

#: Per-task lifecycle within a job.
TASK_STATES = ("queued", "running", "done", "failed")

#: Job lifecycle; a job is ``running`` from submit until every task
#: resolved.
JOB_STATES = ("running", "done", "failed")


@dataclass
class Job:
    """One submitted grid and its per-task progress."""

    job_id: str
    tenant: str
    spec: Dict[str, Any]
    task_keys: List[str]            # unique keys, first-seen grid order
    state: str = "running"
    task_states: Dict[str, str] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)  # key -> reason

    def __post_init__(self) -> None:
        for key in self.task_keys:
            self.task_states.setdefault(key, "queued")

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in TASK_STATES}
        for state in self.task_states.values():
            out[state] += 1
        return out

    def pending_keys(self) -> List[str]:
        return [key for key in self.task_keys
                if self.task_states[key] == "queued"]

    def settled(self) -> bool:
        return all(state in ("done", "failed")
                   for state in self.task_states.values())

    def as_dict(self) -> Dict[str, Any]:
        counts = self.counts()
        return {
            "job": self.job_id,
            "state": self.state,
            "tenant": self.tenant,
            "spec": self.spec,
            "tasks": dict(self.task_states),
            "counts": counts,
            "total_tasks": len(self.task_keys),
            "failures": dict(self.failures),
        }


class JobQueue:
    """Journal-backed job table; see module docstring.

    Thread-safety is the caller's concern: :class:`~repro.serve.service.
    SweepService` serialises every mutation behind its own lock, which
    also keeps journal appends ordered.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.journal_path = os.path.join(root, "journal.jsonl")
        self.jobs: Dict[str, Job] = {}
        self.recovered_tasks = 0   # running -> queued reverts at boot
        self._replay()
        if not os.path.exists(self.journal_path):
            self._append({"schema": JOB_SCHEMA, "ev": "header"})

    # -- journal ------------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")

    def _replay(self) -> None:
        try:
            with open(self.journal_path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn trailing write; skip
            if not isinstance(record, dict):
                continue
            self._apply(record)
        # Worker loss: anything still "running" had no process finishing
        # it — revert to queued so the dispatcher re-runs it (the store
        # turns already-completed work into cache hits).
        for job in self.jobs.values():
            for key, state in job.task_states.items():
                if state == "running":
                    job.task_states[key] = "queued"
                    self.recovered_tasks += 1

    def _apply(self, record: Dict[str, Any]) -> None:
        ev = record.get("ev")
        if ev == "submit":
            job_id = record.get("job")
            tasks = record.get("tasks")
            spec = record.get("spec")
            if (isinstance(job_id, str) and isinstance(tasks, list)
                    and isinstance(spec, dict)):
                self.jobs[job_id] = Job(
                    job_id=job_id, tenant=record.get("tenant", "public"),
                    spec=spec, task_keys=list(tasks))
        elif ev == "task":
            job = self.jobs.get(record.get("job", ""))
            key = record.get("key")
            state = record.get("state")
            if job is not None and key in job.task_states \
                    and state in TASK_STATES:
                job.task_states[key] = state
                if state == "failed":
                    job.failures[key] = str(record.get("reason", ""))
                elif key in job.failures:
                    del job.failures[key]
        elif ev == "job":
            job = self.jobs.get(record.get("job", ""))
            state = record.get("state")
            if job is not None and state in JOB_STATES:
                job.state = state

    # -- mutations ----------------------------------------------------------

    def submit(self, job_id: str, tenant: str, spec: Dict[str, Any],
               task_keys: List[str]) -> Tuple[Job, bool]:
        """Register a job; returns ``(job, created)``.

        An already-known job id (same grid, re-submitted) attaches to
        the existing job — the dedup that makes concurrent identical
        submissions share one execution.
        """
        existing = self.jobs.get(job_id)
        if existing is not None:
            return existing, False
        job = Job(job_id=job_id, tenant=tenant, spec=spec,
                  task_keys=list(task_keys))
        self.jobs[job_id] = job
        self._append({"ev": "submit", "job": job_id, "tenant": tenant,
                      "spec": spec, "tasks": list(task_keys)})
        return job, True

    def mark_task(self, job_id: str, key: str, state: str,
                  reason: Optional[str] = None) -> None:
        job = self.jobs[job_id]
        if state not in TASK_STATES:
            raise ValueError(f"unknown task state {state!r}")
        job.task_states[key] = state
        record: Dict[str, Any] = {"ev": "task", "job": job_id, "key": key,
                                  "state": state}
        if state == "failed":
            job.failures[key] = reason or "unknown failure"
            record["reason"] = job.failures[key]
        elif key in job.failures:
            del job.failures[key]
        self._append(record)

    def mark_job(self, job_id: str, state: str) -> None:
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        self.jobs[job_id].state = state
        self._append({"ev": "job", "job": job_id, "state": state})

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def incomplete(self) -> List[Job]:
        """Jobs that still owe work, in journal (submission) order."""
        return [job for job in self.jobs.values()
                if job.state == "running" and not job.settled()]

    def stats(self) -> Dict[str, int]:
        counts = {state: 0 for state in TASK_STATES}
        for job in self.jobs.values():
            for state in job.task_states.values():
                counts[state] += 1
        return {
            "jobs": len(self.jobs),
            "jobs_running": sum(1 for j in self.jobs.values()
                                if j.state == "running"),
            "jobs_done": sum(1 for j in self.jobs.values()
                             if j.state == "done"),
            "jobs_failed": sum(1 for j in self.jobs.values()
                               if j.state == "failed"),
            "tasks_queued": counts["queued"],
            "tasks_running": counts["running"],
            "tasks_done": counts["done"],
            "tasks_failed": counts["failed"],
            "recovered_tasks": self.recovered_tasks,
        }
