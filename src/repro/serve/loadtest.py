"""``repro loadtest`` — replay a seeded request mix against the service.

The harness generates a deterministic mix of grid submissions with a
configurable *overlap ratio* (the fraction of requests that repeat an
earlier grid and should therefore dedup onto an existing job), replays
it twice, and writes a ``repro.service.bench/1`` artifact:

* **cold pass** — distinct single-benchmark grids; every unique point
  is a store miss that gets simulated and written back;
* **warm pass** — *union* grids that combine the cold grids' benchmarks
  at the same instruction budget.  Their job ids are new (no job-level
  dedup) but every task key already sits in the store, so the warm pass
  measures pure content-addressed reuse.

Hit rates come from ``/v1/stats`` store-counter deltas around each
pass — API reads are counter-neutral (see ``SweepService._peek``), so
the deltas are exactly the runner's cache traffic.  The harness also
re-runs one grid locally through the same ``SweepRunner`` +
``merge_sweep`` pipeline the CLI uses and asserts the served artifact is
byte-identical outside ``context`` (the end-to-end identity contract).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.parallel.runner import SweepRunner
from repro.parallel.sweep import merge_sweep
from repro.parallel.taskkey import canonical_json
from repro.schemas import schema_string
from repro.serve.gridspec import normalise_spec, spec_tasks
from repro.workloads import BENCHMARK_NAMES

#: Schema of the ``BENCH_service.json`` artifact.
SERVICE_BENCH_SCHEMA = schema_string("repro.service.bench", 1)


# -- tiny HTTP client (stdlib only; one connection per request, matching
# -- the server's Connection: close) ------------------------------------


def request(base_url: str, method: str, path: str,
            body: Optional[Dict[str, Any]] = None,
            tenant: Optional[str] = None,
            timeout: float = 120.0) -> Tuple[int, Any]:
    """One HTTP round-trip; returns ``(status, decoded-JSON-or-None)``."""
    parts = urlsplit(base_url)
    conn = http.client.HTTPConnection(parts.hostname or "127.0.0.1",
                                      parts.port or 80, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"}
        if tenant is not None:
            headers["X-Tenant"] = tenant
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    decoded = json.loads(raw.decode("utf-8")) if raw else None
    return response.status, decoded


# -- mix generation ------------------------------------------------------


def build_mix(requests_n: int, overlap: float, seed: int,
              instructions: int) -> Tuple[List[Dict[str, Any]],
                                          List[Dict[str, Any]]]:
    """The (cold, warm) request specs for one loadtest run.

    The cold mix draws from a pool of ``max(1, round(n * (1-overlap)))``
    distinct grids — each pool grid appears at least once, and the
    remaining requests are seeded repeats (the dedup traffic).  The warm
    mix is one union grid per instruction budget used by the pool, so
    every warm task is already stored after the cold pass.
    """
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    rng = random.Random(seed)
    pool_size = max(1, round(requests_n * (1.0 - overlap)))
    pool_size = min(pool_size, requests_n)
    n_bench = len(BENCHMARK_NAMES)
    pool = [{"benchmarks": [BENCHMARK_NAMES[i % n_bench]],
             "instructions": instructions + 1000 * (i // n_bench)}
            for i in range(pool_size)]
    cold = list(pool)
    while len(cold) < requests_n:
        cold.append(rng.choice(pool))
    rng.shuffle(cold)

    by_budget: Dict[int, List[str]] = {}
    for spec in pool:
        by_budget.setdefault(spec["instructions"], []).extend(
            spec["benchmarks"])
    warm = [{"benchmarks": sorted(set(names)), "instructions": budget}
            for budget, names in sorted(by_budget.items())]
    return cold, warm


# -- replay --------------------------------------------------------------


def _run_one(base_url: str, spec: Dict[str, Any], tenant: str,
             poll_interval: float) -> Dict[str, Any]:
    """Submit one grid, poll to completion, fetch the result."""
    t0 = time.monotonic()
    status, receipt = request(base_url, "POST", "/v1/sweeps", body=spec,
                              tenant=tenant)
    submit_latency = time.monotonic() - t0
    if status not in (200, 202) or receipt is None:
        raise RuntimeError(f"submit failed: HTTP {status}: {receipt}")
    job = receipt["job"]
    while True:
        status, info = request(base_url, "GET", f"/v1/sweeps/{job}")
        if status != 200 or info is None:
            raise RuntimeError(f"status failed: HTTP {status}")
        if info["state"] != "running":
            break
        time.sleep(poll_interval)
    status, report = request(base_url, "GET", f"/v1/sweeps/{job}/result")
    if status != 200 or report is None:
        raise RuntimeError(f"result failed: HTTP {status}")
    return {
        "job": job,
        "created": receipt["created"],
        "submit_latency": submit_latency,
        "e2e_latency": time.monotonic() - t0,
        "state": info["state"],
        "points": len(report.get("points", ())),
    }


def _quantiles(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "max": 0.0}
    ordered = sorted(samples)
    def at(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]
    return {"p50": round(at(0.50), 4), "p95": round(at(0.95), 4),
            "max": round(ordered[-1], 4)}


def _store_counters(base_url: str) -> Dict[str, int]:
    status, stats = request(base_url, "GET", "/v1/stats")
    if status != 200 or stats is None:
        raise RuntimeError(f"/v1/stats failed: HTTP {status}")
    return dict(stats["store"])


def _run_pass(base_url: str, specs: List[Dict[str, Any]],
              concurrency: int, tenants: int,
              poll_interval: float) -> Dict[str, Any]:
    before = _store_counters(base_url)
    t0 = time.monotonic()
    with ThreadPoolExecutor(max_workers=max(1, concurrency)) as pool:
        rows = list(pool.map(
            lambda pair: _run_one(base_url, pair[1],
                                  f"tenant-{pair[0] % max(1, tenants)}",
                                  poll_interval),
            enumerate(specs)))
    elapsed = time.monotonic() - t0
    after = _store_counters(base_url)
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    reads = hits + misses
    return {
        "requests": len(rows),
        "elapsed": round(elapsed, 3),
        "deduped_submits": sum(1 for r in rows if not r["created"]),
        "jobs": len({r["job"] for r in rows}),
        "submit_latency": _quantiles([r["submit_latency"] for r in rows]),
        "e2e_latency": _quantiles([r["e2e_latency"] for r in rows]),
        "store_hits": hits,
        "store_misses": misses,
        "hit_rate": round(hits / reads, 4) if reads else 0.0,
        "failed_jobs": sum(1 for r in rows if r["state"] != "done"),
    }


def _check_byte_identity(base_url: str,
                         spec: Dict[str, Any]) -> Dict[str, Any]:
    """Served artifact vs a local ``SweepRunner`` run of the same grid.

    Identity covers ``points``/``aggregates``/``failures`` — the
    ``context`` section intentionally carries run accounting (elapsed,
    worker counts) and is excluded, same as the CLI's own identity
    tests.
    """
    status, receipt = request(base_url, "POST", "/v1/sweeps", body=spec)
    if status not in (200, 202) or receipt is None:
        raise RuntimeError(f"identity submit failed: HTTP {status}")
    job = receipt["job"]
    while True:
        _, info = request(base_url, "GET", f"/v1/sweeps/{job}")
        if info is not None and info["state"] != "running":
            break
        time.sleep(0.05)
    _, served = request(base_url, "GET", f"/v1/sweeps/{job}/result")
    if served is None:
        raise RuntimeError("identity result fetch failed")

    tasks = spec_tasks(normalise_spec(spec))
    outcome = SweepRunner(jobs=1).run(tasks)
    local = merge_sweep(outcome.results, errors=outcome.errors)

    def essence(report: Dict[str, Any]) -> str:
        return canonical_json({"points": report["points"],
                               "aggregates": report["aggregates"],
                               "failures": report["failures"]})

    identical = essence(served) == essence(local)
    return {"job": job, "byte_identical": identical,
            "points": len(served["points"])}


# -- entry point ---------------------------------------------------------


def run_loadtest(base_url: str, requests_n: int = 12, overlap: float = 0.5,
                 concurrency: int = 4, tenants: int = 3, seed: int = 1,
                 instructions: int = 3000, poll_interval: float = 0.05,
                 out: Optional[str] = None) -> Dict[str, Any]:
    """Replay the mix against ``base_url``; return (and optionally
    write) the ``repro.service.bench/1`` report."""
    cold_specs, warm_specs = build_mix(requests_n, overlap, seed,
                                       instructions)
    cold = _run_pass(base_url, cold_specs, concurrency, tenants,
                     poll_interval)
    warm = _run_pass(base_url, warm_specs, concurrency, tenants,
                     poll_interval)
    identity = _check_byte_identity(base_url, cold_specs[0])

    report = {
        "schema": SERVICE_BENCH_SCHEMA,
        "context": {
            "base_url": base_url,
            "requests": requests_n,
            "overlap": overlap,
            "concurrency": concurrency,
            "tenants": tenants,
            "seed": seed,
            "instructions": instructions,
            "unique_grids": len({canonical_json(s) for s in cold_specs}),
            "warm_grids": len(warm_specs),
        },
        "cold": cold,
        "warm": warm,
        "identity": identity,
    }
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def summary_line(report: Dict[str, Any]) -> str:
    """One greppable line (CI asserts on it; keep the format stable)."""
    cold, warm = report["cold"], report["warm"]
    return (f"loadtest: requests={cold['requests']}+{warm['requests']} "
            f"deduped={cold['deduped_submits']} "
            f"cold_hit_rate={cold['hit_rate']:.2f} "
            f"warm_hit_rate={warm['hit_rate']:.2f} "
            f"warm_hits={warm['store_hits']} "
            f"byte_identical={report['identity']['byte_identical']} "
            f"failed={cold['failed_jobs'] + warm['failed_jobs']}")
