"""Simulation-as-a-service on top of the parallel sweep engine.

``repro serve`` turns the sweep pipeline into a long-lived HTTP service:
clients POST declarative grids, a journaled job queue shards them across
the existing :class:`~repro.parallel.SweepRunner` worker pools with
fair scheduling across tenants, and results land in a pluggable
content-addressed :class:`~repro.parallel.ResultStore` shared with the
CLI — so served artifacts are byte-identical to ``repro sweep`` outputs
for the same grid.

Layers (each importable and testable on its own):

* :mod:`repro.serve.gridspec` — declarative grid requests, validation,
  canonical specs, deterministic job ids,
* :mod:`repro.serve.jobs` — the journaled job queue
  (``repro.serve.job/1``) with crash recovery,
* :mod:`repro.serve.scheduler` — tenant-fair round-robin + token-bucket
  rate limits,
* :mod:`repro.serve.store` — result-store backends and the factory,
* :mod:`repro.serve.service` — the transport-agnostic service core,
* :mod:`repro.serve.http` — the zero-dependency asyncio HTTP front end,
* :mod:`repro.serve.loadtest` — the ``repro loadtest`` replay harness
  (``repro.service.bench/1``).

Nothing here is imported by default CLI paths — ``repro serve`` /
``repro loadtest`` defer the import, keeping every other subcommand at
zero added cost (pinned by the subprocess import tests).  See
``docs/service.md`` for the API and operations guide.
"""

from repro.serve.gridspec import (
    GridSpecError,
    normalise_spec,
    spec_job_id,
    spec_tasks,
)
from repro.serve.jobs import JOB_SCHEMA, Job, JobQueue
from repro.serve.loadtest import SERVICE_BENCH_SCHEMA, run_loadtest
from repro.serve.scheduler import FairScheduler, TokenBucket
from repro.serve.service import (
    JobNotSettledError,
    RateLimitError,
    ServiceConfig,
    SweepService,
)
from repro.serve.store import MemoryResultStore, make_store, store_stats

__all__ = [
    "GridSpecError",
    "normalise_spec",
    "spec_job_id",
    "spec_tasks",
    "JOB_SCHEMA",
    "Job",
    "JobQueue",
    "SERVICE_BENCH_SCHEMA",
    "run_loadtest",
    "FairScheduler",
    "TokenBucket",
    "JobNotSettledError",
    "RateLimitError",
    "ServiceConfig",
    "SweepService",
    "MemoryResultStore",
    "make_store",
    "store_stats",
]
