"""A zero-dependency asyncio HTTP/1.1 front end for the sweep service.

Deliberately minimal rather than a framework: requests are parsed off
an ``asyncio.start_server`` stream, every response carries
``Connection: close``, and anything long-running is pushed to a thread
via ``run_in_executor`` so the event loop only ever shuffles bytes.
The API surface (see ``docs/service.md`` for the full reference):

====== ============================== =======================================
Method Path                           Purpose
====== ============================== =======================================
POST   ``/v1/sweeps``                 submit a declarative grid (202/200)
GET    ``/v1/sweeps/{id}``            job status + per-task states
GET    ``/v1/sweeps/{id}/result``     merged ``repro.sweep/1`` artifact
GET    ``/v1/sweeps/{id}/events``     NDJSON progress stream (``?since=N``)
GET    ``/v1/tasks/{key}``            content-addressed point lookup
GET    ``/v1/stats``                  store/queue/scheduler counters
GET    ``/v1/healthz``                liveness probe
====== ============================== =======================================

Errors are structured JSON — ``{"error": {"code", "message", "field"?}}``
— and a malformed submit is rejected before it touches the job queue
(pinned by the failure-path tests).  The tenant for fair scheduling and
rate limiting comes from the ``X-Tenant`` header (default ``public``).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.serve.gridspec import GridSpecError
from repro.serve.service import JobNotSettledError, RateLimitError, SweepService

#: Submit bodies larger than this are refused with 413 (a grid spec is
#: a few hundred bytes; megabytes means a confused client).
MAX_BODY = 1 << 20


def _error_body(code: str, message: str,
                field: Optional[str] = None) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code, "message": message}
    if field is not None:
        error["field"] = field
    return {"error": error}


class ServeHTTP:
    """Bind a :class:`SweepService` to a TCP port."""

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 8752):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        # Report the kernel-assigned port when constructed with port=0.
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- request handling -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader, writer)
            if request is not None:
                method, path, headers, body = request
                await self._route(writer, method, path, headers, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
            self, reader: asyncio.StreamReader,
            writer: asyncio.StreamWriter,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            await self._send_json(writer, 431, _error_body(
                "header_too_large", "request line too long"))
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            await self._send_json(writer, 400, _error_body(
                "bad_request", "malformed request line"))
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = 0
        if length > MAX_BODY:
            await self._send_json(writer, 413, _error_body(
                "body_too_large", f"request body exceeds {MAX_BODY} bytes"))
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _route(self, writer: asyncio.StreamWriter, method: str,
                     target: str, headers: Dict[str, str],
                     body: bytes) -> None:
        path, _, query = target.partition("?")
        segments = [s for s in path.split("/") if s]
        loop = asyncio.get_running_loop()

        if segments == ["v1", "healthz"] and method == "GET":
            await self._send_json(writer, 200, {"ok": True})
            return
        if segments == ["v1", "stats"] and method == "GET":
            stats = await loop.run_in_executor(None, self.service.stats)
            await self._send_json(writer, 200, stats)
            return
        if segments == ["v1", "sweeps"] and method == "POST":
            await self._submit(writer, headers, body)
            return
        if len(segments) == 3 and segments[:2] == ["v1", "sweeps"] \
                and method == "GET":
            status = await loop.run_in_executor(
                None, self.service.status, segments[2])
            if status is None:
                await self._send_json(writer, 404, _error_body(
                    "not_found", f"unknown job {segments[2]!r}"))
            else:
                await self._send_json(writer, 200, status)
            return
        if len(segments) == 4 and segments[:2] == ["v1", "sweeps"] \
                and segments[3] == "result" and method == "GET":
            await self._result(writer, segments[2])
            return
        if len(segments) == 4 and segments[:2] == ["v1", "sweeps"] \
                and segments[3] == "events" and method == "GET":
            await self._events(writer, segments[2], query)
            return
        if len(segments) == 3 and segments[:2] == ["v1", "tasks"] \
                and method == "GET":
            payload = await loop.run_in_executor(
                None, self.service.task, segments[2])
            if payload is None:
                await self._send_json(writer, 404, _error_body(
                    "not_found", f"no stored result for task "
                                 f"{segments[2]!r}"))
            else:
                await self._send_json(writer, 200, payload)
            return
        await self._send_json(writer, 404, _error_body(
            "not_found", f"no route for {method} {path}"))

    async def _submit(self, writer: asyncio.StreamWriter,
                      headers: Dict[str, str], body: bytes) -> None:
        tenant = headers.get("x-tenant", "public") or "public"
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except ValueError:
            await self._send_json(writer, 400, _error_body(
                "invalid_json", "request body is not valid JSON"))
            return
        loop = asyncio.get_running_loop()
        try:
            receipt = await loop.run_in_executor(
                None, self.service.submit, payload, tenant)
        except RateLimitError as error:
            await self._send_json(writer, 429, _error_body(
                "rate_limited", str(error)))
            return
        except GridSpecError as error:
            await self._send_json(
                writer, 400, {"error": error.as_dict()})
            return
        status = 202 if receipt["created"] else 200
        await self._send_json(writer, status, receipt)

    async def _result(self, writer: asyncio.StreamWriter,
                      job_id: str) -> None:
        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                None, self.service.result, job_id)
        except JobNotSettledError as error:
            await self._send_json(writer, 409, _error_body(
                "not_settled", str(error)))
            return
        if report is None:
            await self._send_json(writer, 404, _error_body(
                "not_found", f"unknown job {job_id!r}"))
        else:
            await self._send_json(writer, 200, report)

    async def _events(self, writer: asyncio.StreamWriter, job_id: str,
                      query: str) -> None:
        if self.service.status(job_id) is None:
            await self._send_json(writer, 404, _error_body(
                "not_found", f"unknown job {job_id!r}"))
            return
        since = 0
        for pair in query.split("&"):
            name, _, value = pair.partition("=")
            if name == "since":
                try:
                    since = int(value)
                except ValueError:
                    await self._send_json(writer, 400, _error_body(
                        "bad_request", "since must be an integer",
                        field="since"))
                    return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        loop = asyncio.get_running_loop()
        heartbeat = self.service.config.heartbeat
        while True:
            events, settled = await loop.run_in_executor(
                None, self.service.events_since, job_id, since, heartbeat)
            for event in events:
                since = max(since, event["seq"])
                writer.write(json.dumps(event, sort_keys=True)
                             .encode("utf-8") + b"\n")
            if not events and not settled:
                # Liveness marker so clients can distinguish "quiet"
                # from "dead" (mirrors the runner's heartbeat events).
                writer.write(b'{"ev": "stream_heartbeat"}\n')
            await writer.drain()
            if settled:
                break
            job = self.service.status(job_id)
            if job is not None and job["state"] != "running":
                # Final drain: emit anything raced in, then stop.
                events, _ = await loop.run_in_executor(
                    None, self.service.events_since, job_id, since, 0.0)
                for event in events:
                    writer.write(json.dumps(event, sort_keys=True)
                                 .encode("utf-8") + b"\n")
                await writer.drain()
                break

    @staticmethod
    async def _send_json(writer: asyncio.StreamWriter, status: int,
                         payload: Dict[str, Any]) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 409: "Conflict",
                   413: "Payload Too Large", 429: "Too Many Requests",
                   431: "Request Header Fields Too Large"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


def run_server(service: SweepService, host: str, port: int) -> None:
    """Blocking entry point used by ``repro serve``."""
    server = ServeHTTP(service, host=host, port=port)

    async def _main() -> None:
        await server.start()
        print(f"repro serve: listening on http://{server.host}:"
              f"{server.port} (queue={service.queue.root})", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
