"""Out-of-order timing model.

A dependency-driven, one-pass timing model of the paper's Table 3
baseline: 16-wide fetch/issue/retire, 512-entry window, 20-cycle total
misprediction penalty, a two-level data cache hierarchy and DRAM.

The model computes per-instruction fetch/dispatch/issue/complete/retire
cycles from data dependences, issue-bandwidth contention and window
occupancy rather than simulating cycle-by-cycle structures.  That is the
standard trade-off for trace-driven studies: absolute IPC differs from a
cycle-accurate simulator, but the first-order effects this paper measures
(misprediction penalties avoided or shortened, execution-bandwidth
contention from microthreads, cache warming) are captured.

SSMT integration happens through the listener protocol in
:mod:`repro.uarch.timing`; :mod:`repro.core.ssmt` implements it.
"""

from repro.uarch.config import MachineConfig, TABLE3_BASELINE
from repro.uarch.caches import CacheHierarchy, CacheStats
from repro.uarch.timing import OoOTimingModel, TimingResult, PredictionEntry
from repro.uarch.pipeline_view import (
    InstructionTiming,
    PipelineRecorder,
    render_pipeline,
    summarize_stalls,
)

__all__ = [
    "MachineConfig",
    "TABLE3_BASELINE",
    "CacheHierarchy",
    "CacheStats",
    "OoOTimingModel",
    "TimingResult",
    "PredictionEntry",
    "InstructionTiming",
    "PipelineRecorder",
    "render_pipeline",
    "summarize_stalls",
]
