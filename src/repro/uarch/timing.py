"""Dependency-driven out-of-order timing engine.

Processes a retirement trace once, in order, computing for every dynamic
instruction its fetch, dispatch, issue, completion and retirement cycles
under the configured machine (width limits, window occupancy, shared
issue slots, cache latencies, misprediction redirects).

SSMT hooks
----------
A *listener* (see :class:`~repro.core.ssmt.SSMTEngine`) may be attached.
The engine calls, when present:

``on_run_start(model, trace)``
    once before the first fetch — lets the listener bind run-scoped
    state (the live result, caches, predictor) for telemetry.
``on_fetch(idx, rec, fetch_cycle, engine)``
    at the fetch of every instruction — the spawn hook.
``lookup_prediction(idx, rec, fetch_cycle)``
    for every conditional/indirect branch; returns a
    :class:`PredictionEntry` (microthread prediction with its arrival
    cycle) or ``None``.
``on_prediction_outcome(idx, rec, kind, used, correct, hw_mispredict)``
    classification feedback: ``kind`` is ``early``, ``late_useful``,
    ``late_harmful``, ``late_agree`` or ``useless``.
``on_retire(idx, rec, retire_cycle)``
    at in-order retirement (drives the Path Cache, PRB, promotion, ...).
``on_run_end(result, model)``
    once after the last retirement — flush points for interval samplers
    and lifecycle tracers.

During a run the in-progress totals are readable at
:attr:`OoOTimingModel.result` (the same object that is returned), so
attached telemetry can compute windowed rates mid-run.

Microthread instructions consume the same issue slots as the primary
thread via :meth:`OoOTimingModel.alloc_issue_slot` — that is how
microthread overhead (paper §5.3's third bar) arises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.branch.unit import BranchOutcome, BranchPredictorComplex
from repro.isa.instructions import Opcode
from repro.sim.trace import Trace
from repro.uarch.caches import CacheHierarchy, CacheStats
from repro.uarch.config import MachineConfig, TABLE3_BASELINE


@dataclass
class PredictionEntry:
    """A microthread prediction as seen by the front-end."""

    __slots__ = ("taken", "target", "arrival_cycle")

    taken: bool
    target: int
    arrival_cycle: int


@dataclass
class TimingResult:
    """Cycle counts and event statistics for one timing run."""

    name: str
    instructions: int = 0
    cycles: int = 0
    # hardware-predictor outcomes (before microthread involvement)
    hw_mispredicts: int = 0
    # effective outcomes after microthread predictions are applied
    effective_mispredicts: int = 0
    early_recoveries: int = 0
    prediction_kinds: Dict[str, int] = field(default_factory=dict)
    btb_bubbles: int = 0
    cache: Optional[CacheStats] = None
    conditional_branches: int = 0
    indirect_branches: int = 0
    #: sampling metadata when the run was sampled (:mod:`repro.kernel.
    #: sampling`); ``None`` for exact runs.  Deliberately excluded from
    #: :meth:`as_dict` — the sweep worker marks sampled payloads
    #: explicitly so exact-mode payload layouts stay bit-identical.
    sample: Optional[Dict[str, object]] = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def mispredict_rate(self) -> float:
        total = self.conditional_branches + self.indirect_branches
        return self.effective_mispredicts / total if total else 0.0

    def as_dict(self, include_cache: bool = True) -> Dict[str, object]:
        """Uniform export (telemetry collector surface)."""
        out: Dict[str, object] = {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": round(self.ipc, 6),
            "hw_mispredicts": self.hw_mispredicts,
            "effective_mispredicts": self.effective_mispredicts,
            "mispredict_rate": round(self.mispredict_rate(), 6),
            "early_recoveries": self.early_recoveries,
            "btb_bubbles": self.btb_bubbles,
            "conditional_branches": self.conditional_branches,
            "indirect_branches": self.indirect_branches,
            "prediction_kinds": dict(self.prediction_kinds),
        }
        if include_cache and self.cache is not None:
            out["cache"] = self.cache.as_dict()
        return out


_MEM_OPS = (Opcode.LD, Opcode.ST)


class OoOTimingModel:
    """One-pass timing model; see module docstring."""

    def __init__(self, config: MachineConfig = TABLE3_BASELINE):
        self.config = config
        self.caches = CacheHierarchy(config)
        self._slot_used: Dict[int, int] = {}
        self.reg_ready: List[int] = [0] * 32
        self._frontend_debt = 0
        #: the in-progress result of the current run (live view for
        #: attached telemetry); the same object :meth:`run` returns
        self.result: Optional[TimingResult] = None
        #: the predictor of the current run (telemetry collector)
        self.predictor: Optional[BranchPredictorComplex] = None

    def add_frontend_debt(self, instructions: int) -> None:
        """Charge microthread instructions against the shared decode/rename
        bandwidth (SSMT microthreads are injected into the same 16-wide
        rename pipeline as the primary thread).  Microthreads may claim at
        most half the width per cycle, modelling the arbitration that lets
        them use spare slots preferentially."""
        self._frontend_debt += instructions

    # -- services shared with the SSMT listener ------------------------------

    def alloc_issue_slot(self, earliest: int) -> int:
        """Claim one of the ``issue_width`` shared slots at or after
        ``earliest``; returns the cycle granted."""
        width = self.config.issue_width
        slots = self._slot_used
        t = earliest
        while slots.get(t, 0) >= width:
            t += 1
        slots[t] = slots.get(t, 0) + 1
        return t

    def op_latency(self, op: Opcode) -> int:
        if op == Opcode.MUL:
            return self.config.mul_latency
        return self.config.int_latency

    # -- main loop ------------------------------------------------------------

    def run(self, trace: Trace, predictor: BranchPredictorComplex,
            listener=None) -> TimingResult:
        cfg = self.config
        result = TimingResult(name=trace.name, cache=self.caches.stats)
        self.result = result
        self.predictor = predictor
        reg_ready = self.reg_ready
        caches = self.caches
        alloc_issue_slot = self.alloc_issue_slot
        load_latency = caches.load_latency
        frontend = cfg.frontend_depth
        redirect = cfg.redirect_after_resolve
        window = cfg.window_size
        fetch_width = cfg.fetch_width
        taken_limit = cfg.fetch_taken_limit
        retire_width = cfg.retire_width

        on_run_start = getattr(listener, "on_run_start", None)
        on_run_end = getattr(listener, "on_run_end", None)
        on_fetch = getattr(listener, "on_fetch", None)
        lookup_prediction = getattr(listener, "lookup_prediction", None)
        on_outcome = getattr(listener, "on_prediction_outcome", None)
        on_retire = getattr(listener, "on_retire", None)
        on_control = getattr(listener, "on_control", None)
        on_timed = getattr(listener, "on_timed", None)

        # fetch cursor state
        fetch_cycle = 0
        fetched_this_cycle = 0
        taken_this_cycle = 0
        uops_this_cycle = 0  # microthread instructions renamed this cycle
        fetch_barrier = 0  # earliest cycle the next fetch may occur

        # in-order retirement state
        retire_ring: List[int] = [0] * window
        last_retire = 0
        retired_in_cycle = 0

        last_store_complete: Dict[int, int] = {}
        prev_was_taken = False

        if on_run_start is not None:
            on_run_start(self, trace)

        for idx, rec in enumerate(trace.records):
            # ---- fetch ------------------------------------------------------
            if fetch_barrier > fetch_cycle:
                fetch_cycle = fetch_barrier
                fetched_this_cycle = 0
                taken_this_cycle = 0
                uops_this_cycle = 0
            if fetched_this_cycle >= fetch_width or taken_this_cycle >= taken_limit:
                fetch_cycle += 1
                fetched_this_cycle = 0
                taken_this_cycle = 0
                uops_this_cycle = 0
            while self._frontend_debt > 0:
                room = min(fetch_width // 2 - uops_this_cycle,
                           fetch_width - fetched_this_cycle)
                if room <= 0:
                    fetch_cycle += 1
                    fetched_this_cycle = 0
                    taken_this_cycle = 0
                    uops_this_cycle = 0
                    continue
                claim = min(self._frontend_debt, room)
                self._frontend_debt -= claim
                fetched_this_cycle += claim
                uops_this_cycle += claim
            fetched_this_cycle += 1
            if prev_was_taken:
                taken_this_cycle += 1

            if on_fetch is not None:
                on_fetch(idx, rec, fetch_cycle, self)

            # ---- dispatch (window occupancy) ---------------------------------
            dispatch = fetch_cycle + frontend
            slot_index = idx % window
            if idx >= window and retire_ring[slot_index] > dispatch:
                dispatch = retire_ring[slot_index]

            # ---- issue ---------------------------------------------------------
            inst = rec.inst
            ready = dispatch
            for src in inst.srcs:
                t = reg_ready[src]
                if t > ready:
                    ready = t
            op = inst.opcode
            if op == Opcode.LD:
                t = last_store_complete.get(rec.ea, 0)
                if t > ready:
                    ready = t
                issue = alloc_issue_slot(ready)
                complete = issue + load_latency(rec.ea, issue)
            elif op == Opcode.ST:
                issue = alloc_issue_slot(ready)
                caches.store(rec.ea)
                complete = issue + cfg.store_latency
                last_store_complete[rec.ea] = complete
            elif op == Opcode.MUL:
                issue = alloc_issue_slot(ready)
                complete = issue + cfg.mul_latency
            else:
                issue = alloc_issue_slot(ready)
                complete = issue + cfg.int_latency

            dest = inst.dest
            if dest is not None:
                reg_ready[dest] = complete

            # ---- control resolution -----------------------------------------
            prev_was_taken = False
            if inst.is_control:
                prev_was_taken = rec.taken
                outcome = predictor.process(rec)
                resolve = complete
                if on_control is not None:
                    on_control(idx, rec, outcome, fetch_cycle, resolve)
                effective_mis, recovery, bubble = self._resolve_control(
                    idx, rec, outcome, fetch_cycle, resolve, result,
                    lookup_prediction, on_outcome,
                )
                if inst.is_conditional_branch:
                    result.conditional_branches += 1
                elif inst.is_indirect:
                    result.indirect_branches += 1
                if outcome.mispredicted:
                    result.hw_mispredicts += 1
                if effective_mis:
                    result.effective_mispredicts += 1
                    fetch_barrier = max(fetch_barrier, recovery + redirect)
                elif bubble:
                    result.btb_bubbles += 1
                    fetch_barrier = max(fetch_barrier,
                                        fetch_cycle + cfg.btb_miss_bubble)

            # ---- retire --------------------------------------------------------
            rc = complete if complete > last_retire else last_retire
            if rc == last_retire:
                retired_in_cycle += 1
                if retired_in_cycle > retire_width:
                    rc += 1
                    retired_in_cycle = 1
            else:
                retired_in_cycle = 1
            last_retire = rc
            retire_ring[slot_index] = rc

            if on_retire is not None:
                on_retire(idx, rec, rc)
            if on_timed is not None:
                on_timed(idx, rec, fetch_cycle, dispatch, issue, complete, rc)

        result.instructions = len(trace.records)
        result.cycles = last_retire + 1
        if on_run_end is not None:
            on_run_end(result, self)
        return result

    # -- control handling -------------------------------------------------------

    def _resolve_control(self, idx, rec, outcome: BranchOutcome, fetch_cycle,
                         resolve, result, lookup_prediction, on_outcome):
        """Combine the hardware prediction with any microthread prediction.

        Returns ``(effective_mispredict, recovery_cycle, btb_bubble)``.
        """
        inst = rec.inst
        hw_mis = outcome.mispredicted
        bubble = outcome.btb_miss and outcome.predicted_taken and not hw_mis

        predictable = inst.is_path_terminating
        entry = None
        if predictable and lookup_prediction is not None:
            entry = lookup_prediction(idx, rec, fetch_cycle)
        if entry is None:
            return hw_mis, resolve, bubble

        if inst.is_conditional_branch:
            ut_correct = entry.taken == rec.taken
            disagrees = entry.taken != outcome.predicted_taken
        else:  # indirect
            ut_correct = entry.target == rec.next_pc
            disagrees = entry.target != outcome.predicted_target

        arrival = entry.arrival_cycle
        if arrival <= fetch_cycle:
            # Early: the microthread prediction replaces the hardware one.
            kind = "early"
            effective_mis = not ut_correct
            recovery = resolve
            bubble = False
        elif arrival <= resolve:
            # Late: only matters if it disagrees with the prediction in use
            # (the machine assumes the microthread is more accurate).
            if not disagrees:
                kind = "late_agree"
                effective_mis = hw_mis
                recovery = resolve
            elif ut_correct:
                kind = "late_useful"
                effective_mis = True  # flush happens, but earlier
                recovery = arrival
                result.early_recoveries += 1
            else:
                kind = "late_harmful"
                effective_mis = True
                recovery = resolve
        else:
            kind = "useless"
            effective_mis = hw_mis
            recovery = resolve

        result.prediction_kinds[kind] = result.prediction_kinds.get(kind, 0) + 1
        if on_outcome is not None:
            on_outcome(idx, rec, kind, arrival <= fetch_cycle, ut_correct, hw_mis)
        return effective_mis, recovery, bubble
