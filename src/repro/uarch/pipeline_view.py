"""Pipeline timing capture and text rendering.

:class:`PipelineRecorder` is a timing-model listener that captures each
instruction's fetch/dispatch/issue/complete/retire cycles (via the
``on_timed`` hook); :func:`render_pipeline` draws the classic pipeline
diagram — one row per instruction, one column per cycle — which makes
misprediction bubbles, cache-miss stalls and window pressure visible at
a glance.  Used by ``examples/pipeline_diagram.py`` and handy when
debugging timing-model behaviour.

Stage letters: ``F`` fetch, ``D`` dispatch (rename done), ``I`` issue,
``C`` complete, ``R`` retire; ``.`` marks cycles in between stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class InstructionTiming:
    """Cycle timeline of one dynamic instruction."""

    idx: int
    disassembly: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    retire: int


class PipelineRecorder:
    """Listener capturing per-instruction pipeline timings.

    ``start``/``count`` bound the recorded window so long runs do not
    accumulate millions of rows.  Composable with another listener (e.g.
    the SSMT engine) via ``chain``: all hooks of the chained listener
    are forwarded.
    """

    def __init__(self, start: int = 0, count: int = 64, chain=None):
        self.start = start
        self.count = count
        self.records: List[InstructionTiming] = []
        self._chain = chain
        # forward the chained listener's other hooks, if present
        if chain is not None:
            for hook in ("on_fetch", "lookup_prediction", "on_control",
                         "on_prediction_outcome"):
                target = getattr(chain, hook, None)
                if target is not None:
                    setattr(self, hook, target)

    def on_retire(self, idx, rec, retire_cycle):
        chained = getattr(self._chain, "on_retire", None)
        if chained is not None:
            chained(idx, rec, retire_cycle)

    def on_timed(self, idx, rec, fetch, dispatch, issue, complete, retire):
        if self.start <= idx < self.start + self.count:
            self.records.append(InstructionTiming(
                idx, rec.inst.disassemble(), fetch, dispatch, issue,
                complete, retire))
        chained = getattr(self._chain, "on_timed", None)
        if chained is not None:
            chained(idx, rec, fetch, dispatch, issue, complete, retire)


def render_pipeline(records: Sequence[InstructionTiming],
                    max_width: int = 100,
                    disassembly_width: int = 24) -> str:
    """Draw the pipeline diagram for recorded instructions."""
    if not records:
        return "(no instructions recorded)"
    first_cycle = min(r.fetch for r in records)
    last_cycle = max(r.retire for r in records)
    span = last_cycle - first_cycle + 1
    clipped = span > max_width

    lines = [f"cycles {first_cycle}..{last_cycle}"
             + (" (clipped)" if clipped else "")]
    for r in records:
        row = [" "] * min(span, max_width)

        def mark(cycle: int, letter: str) -> None:
            offset = cycle - first_cycle
            if 0 <= offset < len(row):
                if row[offset] == " " or row[offset] == ".":
                    row[offset] = letter

        # in-flight filler between issue and completion
        for cycle in range(r.issue, min(r.complete + 1,
                                        first_cycle + len(row))):
            mark(cycle, ".")
        mark(r.fetch, "F")
        mark(r.dispatch, "D")
        mark(r.issue, "I")
        mark(r.complete, "C")
        mark(r.retire, "R")
        label = r.disassembly[:disassembly_width].ljust(disassembly_width)
        lines.append(f"{r.idx:5d} {label} |{''.join(row)}|")
    return "\n".join(lines)


def summarize_stalls(records: Sequence[InstructionTiming]) -> dict:
    """Aggregate where cycles are spent between stages."""
    if not records:
        return {"fetch_to_dispatch": 0.0, "dispatch_to_issue": 0.0,
                "issue_to_complete": 0.0, "complete_to_retire": 0.0}
    n = len(records)
    return {
        "fetch_to_dispatch": sum(r.dispatch - r.fetch for r in records) / n,
        "dispatch_to_issue": sum(r.issue - r.dispatch for r in records) / n,
        "issue_to_complete": sum(r.complete - r.issue for r in records) / n,
        "complete_to_retire": sum(r.retire - r.complete for r in records) / n,
    }
