"""Two-level data cache hierarchy with DRAM backing.

Set-associative, LRU, word-granularity addresses grouped into lines.
Per Table 3, stores are sent directly to the L2 and invalidate the L1
line.  Microthread loads go through the same hierarchy, which is how
prefetching side-effects (paper §5.3, mcf) arise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.telemetry.registry import StatsBase
from repro.uarch.config import MachineConfig


@dataclass
class CacheStats(StatsBase):
    """Cache hierarchy counters; uniform export via :class:`StatsBase`."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    stores: int = 0

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 1.0


class _SetAssocCache:
    """One cache level; tracks line tags only (timing model, no data)."""

    def __init__(self, total_words: int, assoc: int, line_words: int):
        if total_words % (assoc * line_words):
            raise ValueError("cache size must be divisible by assoc * line")
        self.n_sets = total_words // (assoc * line_words)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.assoc = assoc
        # Per-set list of line tags, most-recently-used last.
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self._set_mask = self.n_sets - 1

    def lookup(self, line: int, allocate: bool = True) -> bool:
        """True on hit.  Updates LRU; allocates on miss if requested."""
        ways = self._sets[line & self._set_mask]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return True
        if allocate:
            if len(ways) >= self.assoc:
                del ways[0]
            ways.append(line)
        return False

    def invalidate(self, line: int) -> None:
        ways = self._sets[line & self._set_mask]
        if line in ways:
            ways.remove(line)


class CacheHierarchy:
    """L1 + L2 + DRAM latency model."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.l1 = _SetAssocCache(config.l1_words, config.l1_assoc,
                                 config.line_words)
        self.l2 = _SetAssocCache(config.l2_words, config.l2_assoc,
                                 config.line_words)
        self.stats = CacheStats()
        self._line_shift = config.line_words.bit_length() - 1
        #: cycle at which each in-flight line fill completes (MSHR model);
        #: a "hit" on a line still being filled waits for the fill.
        self._line_ready: Dict[int, int] = {}

    def load_latency(self, address: int, when: int = 0) -> int:
        """Latency of a load to ``address`` issued at cycle ``when``.

        Fills lines on miss and records the fill completion time, so a
        later access to a line whose fill is still in flight (e.g. the
        primary thread following a microthread prefetch) waits for the
        remainder instead of acausally enjoying a warm hit.
        """
        cfg = self.config
        line = address >> self._line_shift
        if self.l1.lookup(line):
            self.stats.l1_hits += 1
            return self._settle(line, when, cfg.l1_latency)
        self.stats.l1_misses += 1
        if self.l2.lookup(line):
            self.stats.l2_hits += 1
            latency = cfg.l1_latency + cfg.l2_latency
        else:
            self.stats.l2_misses += 1
            latency = cfg.l1_latency + cfg.l2_latency + cfg.memory_latency
        self._line_ready[line] = when + latency
        return latency

    def _settle(self, line: int, when: int, hit_latency: int) -> int:
        """Hit latency, extended if the line's fill is still in flight."""
        ready = self._line_ready.get(line, 0)
        if ready > when + hit_latency:
            return ready - when
        return hit_latency

    def store(self, address: int) -> int:
        """Stores go to L2 and invalidate L1 (Table 3); returns latency
        into the store buffer (the primary thread does not wait on it)."""
        cfg = self.config
        line = address >> self._line_shift
        self.stats.stores += 1
        self.l1.invalidate(line)
        self.l2.lookup(line)  # allocate in L2
        return cfg.store_latency
