"""Machine configuration (paper Table 3).

Each field documents which Table 3 line it models.  The timing model is
dependency-driven, so some structural details (banks, buses, queues) are
folded into effective latencies; those folds are noted inline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the modelled machine."""

    # -- Fetch / Decode / Rename ------------------------------------------
    #: "16-wide decoder"; instructions fetched per cycle.
    fetch_width: int = 16
    #: "all predictors capable of generating 3 predictions per cycle" /
    #: "3 accesses per cycle": taken control transfers followed per cycle.
    fetch_taken_limit: int = 3
    #: 3-cycle icache + 1-cycle decode + 4-cycle rename: cycles from fetch
    #: to dispatch into the window.
    frontend_depth: int = 8

    # -- Branch handling ---------------------------------------------------
    #: "total misprediction penalty is 20 cycles".  The model charges
    #: ``mispredict_penalty - frontend_depth`` cycles from branch
    #: resolution to refetch, plus the front-end depth on the refilled
    #: path, reproducing the paper's total.
    mispredict_penalty: int = 20
    #: Decode-redirect bubble for a predicted-taken branch missing the BTB.
    btb_miss_bubble: int = 3

    # -- Execution core -----------------------------------------------------
    #: "512-entry out-of-order window".
    window_size: int = 512
    #: "16 all-purpose functional units" — shared issue slots per cycle
    #: (microthreads compete for the same slots).
    issue_width: int = 16
    retire_width: int = 16
    int_latency: int = 1
    mul_latency: int = 3

    # -- Data caches / memory ------------------------------------------------
    #: 64KB L1 @ 8B words; 2-way; 3-cycle latency.
    l1_words: int = 8192
    l1_assoc: int = 2
    l1_latency: int = 3
    #: 1MB L2, 8-way; "6 cycle latency once access starts" + bus ≈ 10.
    l2_words: int = 131072
    l2_assoc: int = 8
    l2_latency: int = 10
    #: "100 cycle DRAM part access latency once access starts" + bus
    #: arbitration and queueing ≈ 110.
    memory_latency: int = 110
    line_words: int = 8
    store_latency: int = 1

    @property
    def redirect_after_resolve(self) -> int:
        """Cycles from branch resolution to the refetch of the correct path."""
        return max(0, self.mispredict_penalty - self.frontend_depth)

    def scaled(self, **overrides) -> "MachineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


#: The paper's baseline machine.
TABLE3_BASELINE = MachineConfig()
