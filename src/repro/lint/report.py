"""Lint report rendering: human text and machine JSON.

The JSON form carries the ``repro.lint/1`` schema marker and is what
the CI ``lint-invariants`` job consumes; the text form is for humans at
the terminal.  Both render the same :class:`LintReport`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.lint.rules import Finding
from repro.schemas import CODE_SCHEMA_VERSION, schema_string
from repro.verify.diagnostics import Severity

REPORT_SCHEMA = schema_string("repro.lint", 1)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity >= Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings
                if f.severity == Severity.WARNING]

    def ok(self) -> bool:
        return not self.errors

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings,
                      key=lambda f: (f.path, f.line, f.rule, f.symbol))

    # -- renderers --------------------------------------------------------

    def to_text(self) -> str:
        lines = [f.format() for f in self.sorted_findings()]
        lines.append(
            f"repro lint: {self.files_checked} files, "
            f"{len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s), {len(self.suppressed)} baseline-suppressed")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "code_schema_version": CODE_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "suppressed": len(self.suppressed),
            },
            "findings": [_finding_dict(f) for f in self.sorted_findings()],
            "suppressed": [_finding_dict(f) for f in sorted(
                self.suppressed,
                key=lambda f: (f.path, f.line, f.rule, f.symbol))],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _finding_dict(f: Finding) -> Dict[str, object]:
    return {
        "rule": f.rule,
        "severity": f.severity.name,
        "path": f.path,
        "line": f.line,
        "symbol": f.symbol,
        "message": f.message,
        "hint": f.hint,
    }
