"""Determinism rules LINT001-005.

Scope: modules whose behaviour flows into task keys, worker payloads, or
canonical JSON (``repro.parallel.*``, ``repro.sim.*``,
``repro.workloads.*``).  A single ambient read — an unseeded RNG draw, a
clock sample, an environment variable — in these modules silently forks
the "two tasks with equal keys produce bit-identical payloads" contract
the result cache is built on, so the rules reject the *capability*, not
just observed nondeterminism.  Intentional exceptions (e.g. the sweep
runner's wall-clock accounting, which never enters a payload) carry a
justified baseline entry.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.astutil import ModuleContext
from repro.lint.rules import (
    DETERMINISM_MODULES,
    Finding,
    in_scope,
    severity_of,
)

#: Clock reads that differ run-to-run.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Environment / entropy reads.
_AMBIENT_CALLS = frozenset({
    "os.getenv", "os.urandom", "os.environ.get",
    "uuid.uuid1", "uuid.uuid4",
})

#: Sequence constructors that freeze a set's iteration order.
_MATERIALISERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _finding(ctx: ModuleContext, rule: str, node: ast.AST, message: str,
             hint: str = "") -> Finding:
    return Finding(rule=rule, severity=severity_of(rule), path=ctx.path,
                   line=getattr(node, "lineno", 0),
                   symbol=ctx.symbol_of(node), message=message, hint=hint)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def check_determinism(ctx: ModuleContext) -> List[Finding]:
    if not in_scope(ctx.module, DETERMINISM_MODULES):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            findings.extend(_check_call(ctx, node))
        elif isinstance(node, ast.Attribute) and node.attr == "environ":
            qual = ctx.aliases.get(node.value.id) \
                if isinstance(node.value, ast.Name) else None
            if qual == "os" and not _reported_as_call(ctx, node):
                findings.append(_finding(
                    ctx, "LINT003", node,
                    "os.environ read in a determinism-scoped module",
                    "pass configuration explicitly; ambient state must "
                    "not reach payloads or task keys"))
        elif isinstance(node, ast.For) and _is_set_expr(node.iter):
            findings.append(_finding(
                ctx, "LINT004", node,
                "iterating a set: order is hash-seed dependent",
                "wrap in sorted(...)"))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    findings.append(_finding(
                        ctx, "LINT004", node,
                        "comprehension over a set: order is hash-seed "
                        "dependent", "wrap in sorted(...)"))
    return findings


def _reported_as_call(ctx: ModuleContext, environ: ast.Attribute) -> bool:
    """Whether this ``os.environ`` node is the receiver of a method call
    the call check already reports (avoids double-flagging one read)."""
    parent = ctx.parent(environ)
    if not (isinstance(parent, ast.Attribute) and parent.value is environ):
        return False
    grand = ctx.parent(parent)
    return (isinstance(grand, ast.Call) and grand.func is parent
            and f"os.environ.{parent.attr}" in _AMBIENT_CALLS)


def _check_call(ctx: ModuleContext, call: ast.Call) -> List[Finding]:
    qual = ctx.qualname_of_call(call)
    out: List[Finding] = []
    if qual is not None:
        if qual == "random.Random":
            if not call.args and not call.keywords:
                out.append(_finding(
                    ctx, "LINT001", call,
                    "random.Random() constructed without a seed",
                    "pass an explicit seed derived from the workload spec"))
        elif qual.startswith("random."):
            out.append(_finding(
                ctx, "LINT001", call,
                f"process-global RNG call {qual}()",
                "use a seeded random.Random instance; the module-level "
                "RNG is shared process state"))
        elif qual.startswith("numpy.random.") or qual.startswith(
                "np.random."):
            out.append(_finding(
                ctx, "LINT001", call,
                f"numpy global RNG call {qual}()",
                "use numpy.random.Generator seeded from the workload "
                "spec"))
        elif qual in _CLOCK_CALLS:
            out.append(_finding(
                ctx, "LINT002", call,
                f"clock read {qual}() in a determinism-scoped module",
                "timing belongs in telemetry/perf layers; keep it out of "
                "payload-producing code"))
        elif qual in _AMBIENT_CALLS or qual.startswith("secrets."):
            out.append(_finding(
                ctx, "LINT003", call,
                f"ambient input {qual}() in a determinism-scoped module",
                "pass configuration explicitly; ambient state must not "
                "reach payloads or task keys"))
        elif qual in ("json.dumps", "json.dump"):
            if not _has_sort_keys(call):
                out.append(_finding(
                    ctx, "LINT005", call,
                    f"{qual}() without sort_keys=True",
                    "canonical JSON requires sorted keys for "
                    "bit-identical payloads"))
    if isinstance(call.func, ast.Name) and call.func.id in _MATERIALISERS:
        if call.args and _is_set_expr(call.args[0]):
            out.append(_finding(
                ctx, "LINT004", call,
                f"{call.func.id}() over a set: order is hash-seed "
                "dependent", "wrap the set in sorted(...)"))
    return out


def _has_sort_keys(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "sort_keys":
            value = kw.value
            return not (isinstance(value, ast.Constant)
                        and value.value is False)
        if kw.arg is None:  # **kwargs — assume the caller knows
            return True
    return False
