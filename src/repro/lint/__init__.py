"""repro.lint — AST-based determinism & hot-path invariant analyzer.

Three rule families guard the contracts earlier PRs established:

* determinism (LINT001-005): modules feeding task keys and payloads
  must not read ambient state or depend on unordered iteration;
* hot-path discipline (LINT010-013): the per-retire simulator core keeps
  its ``__slots__`` / fused-predictor / guarded-hook shapes;
* schema governance (LINT020-022): artifact markers come from
  :data:`repro.schemas.SCHEMA_REGISTRY`, and payload-affecting modules
  cannot change without a ``CODE_SCHEMA_VERSION`` bump or an explicit
  fingerprint-manifest refresh.

Entry points: the ``repro lint`` CLI subcommand, or programmatically
:class:`~repro.lint.engine.LintEngine` /
:func:`~repro.lint.engine.analyze_source`.  See ``docs/lint.md``.
"""

from repro.lint.baseline import BASELINE_NAME, BaselineEntry, load_baseline
from repro.lint.engine import LintEngine, analyze_source
from repro.lint.fingerprint import (
    MANIFEST_NAME,
    fingerprint_source,
    normalize_source,
)
from repro.lint.report import LintReport
from repro.lint.rules import LINT_RULES, Finding, severity_of

__all__ = [
    "BASELINE_NAME",
    "BaselineEntry",
    "Finding",
    "LINT_RULES",
    "LintEngine",
    "LintReport",
    "MANIFEST_NAME",
    "analyze_source",
    "fingerprint_source",
    "load_baseline",
    "normalize_source",
    "severity_of",
]
