"""Rule catalog, scopes, and the :class:`Finding` record.

Rule ids are ``LINT0xx``, registered into the shared rule namespace of
:mod:`repro.verify.diagnostics` (the ``MT*``/``SAN*`` plumbing), so ids
stay globally unique and every family is enumerable by the docs checks.

Three families:

* **determinism** (LINT001-005) — modules that feed task keys, worker
  payloads, or canonical JSON must not read ambient state (RNG, clock,
  environment) or depend on unordered iteration;
* **hot-path discipline** (LINT010-013) — the per-retire simulator core
  must keep the shapes PR 5's profile-guided pass established;
* **schema governance** (LINT020-022) — versioned artifact markers come
  from :data:`repro.schemas.SCHEMA_REGISTRY`, and payload-affecting
  modules cannot change without a ``CODE_SCHEMA_VERSION`` bump or an
  explicit fingerprint-manifest refresh.

LINT030/031 govern the suppression baseline itself: every entry needs a
justification, and entries that no longer match anything are reported so
the baseline cannot silently rot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.verify.diagnostics import Severity, register_rules

#: Registry of every lint rule id, for docs and ``repro lint --rules``.
LINT_RULES: Dict[str, str] = {
    # -- determinism ------------------------------------------------------
    "LINT001": "unseeded-rng: process-global or unseeded RNG use "
               "(random module functions, random.Random(), numpy.random.*) "
               "in a determinism-scoped module",
    "LINT002": "time-dependence: wall-clock or monotonic-clock read "
               "(time.*, datetime.now/today) in a determinism-scoped "
               "module",
    "LINT003": "ambient-input: environment or entropy read (os.environ, "
               "os.getenv, os.urandom, secrets, uuid1/uuid4) in a "
               "determinism-scoped module",
    "LINT004": "set-iteration-order: iterating a set (or materialising "
               "one into a sequence) without sorted() in a "
               "determinism-scoped module",
    "LINT005": "unsorted-json: json.dump/json.dumps without "
               "sort_keys=True in a determinism-scoped module",
    # -- hot-path discipline ----------------------------------------------
    "LINT010": "missing-slots: a non-dataclass class in a designated hot "
               "module does not declare __slots__",
    "LINT011": "unfused-predictor: a call site invokes .predict() and "
               ".update() on the same receiver instead of the fused "
               "predict_and_update()",
    "LINT012": "unguarded-hook: a telemetry/sanitizer/event-log/verifier "
               "hook call in a hot module is not behind an "
               "'is not None' fast-path guard",
    "LINT013": "stats-base: a *Stats class does not derive StatsBase "
               "(uniform as_dict()/snapshot() export surface)",
    # -- schema governance ------------------------------------------------
    "LINT020": "unregistered-schema: a 'repro.*/N' schema marker literal "
               "is not in repro.schemas.SCHEMA_REGISTRY (import it via "
               "schema_string() instead)",
    "LINT021": "undocumented-schema: a registered schema marker is not "
               "mentioned anywhere in README.md or docs/",
    "LINT022": "schema-drift: a payload-affecting module's AST "
               "fingerprint changed without a CODE_SCHEMA_VERSION bump "
               "or an explicit manifest refresh (repro lint "
               "--update-manifest)",
    # -- baseline governance ----------------------------------------------
    "LINT030": "stale-baseline: a suppression baseline entry no longer "
               "matches any finding; delete it",
    "LINT031": "invalid-baseline: a suppression baseline entry is "
               "malformed or missing its justification",
}

register_rules("LINT", LINT_RULES)

#: Severity per rule; everything not listed here is an ERROR.
RULE_SEVERITY: Dict[str, Severity] = {
    "LINT030": Severity.WARNING,
}


def severity_of(rule: str) -> Severity:
    return RULE_SEVERITY.get(rule, Severity.ERROR)


# -- scopes ---------------------------------------------------------------

#: Determinism-scoped packages: everything feeding task keys, worker
#: payloads, or canonical JSON (rules LINT001-005).
DETERMINISM_MODULES: Tuple[str, ...] = (
    "repro.parallel", "repro.sim", "repro.workloads",
)

#: Designated hot modules: the per-retire core PR 5 optimised
#: (rules LINT010 and LINT012).
HOT_MODULES: Tuple[str, ...] = (
    "repro.core.ssmt", "repro.core.prb", "repro.core.path",
)

#: Where the fused predict/update discipline applies (rule LINT011).
FUSED_SCOPE: Tuple[str, ...] = (
    "repro.branch", "repro.core", "repro.uarch",
)

#: Engine attributes that are observability hooks with an is-None
#: fast path (rule LINT012).
HOOK_ATTRS: Tuple[str, ...] = (
    "telemetry", "sanitizer", "event_log", "verifier",
)

#: Payload-affecting module prefixes (relative to ``src/``), fingerprinted
#: by the schema-drift gate (rule LINT022): everything whose semantics
#: flow into sweep-point payloads or task keys.
PAYLOAD_PREFIXES: Tuple[str, ...] = (
    "repro/core/", "repro/uarch/", "repro/branch/", "repro/workloads/",
    "repro/sim/", "repro/valuepred/", "repro/isa/", "repro/kernel/",
    "repro/parallel/worker.py", "repro/parallel/taskkey.py",
    "repro/parallel/cache.py", "repro/schemas.py",
)


def in_scope(module: str, scopes: Tuple[str, ...]) -> bool:
    """Whether dotted ``module`` is one of, or nested under, ``scopes``."""
    return any(module == s or module.startswith(s + ".") for s in scopes)


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file/line/symbol."""

    rule: str                 # stable id, e.g. "LINT001"
    severity: Severity
    path: str                 # repo-relative posix path
    line: int                 # 1-based; 0 for repo-level findings
    symbol: str               # enclosing Class.method, or "<module>"
    message: str
    hint: str = ""

    def format(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        text = (f"{loc}: {self.rule} {self.severity.name} "
                f"[{self.symbol}] {self.message}")
        if self.hint:
            text += f" (hint: {self.hint})"
        return text
