"""The lint driver: walk ``src/repro``, run every checker, gate, report.

:class:`LintEngine` is what ``repro lint`` and the tests drive.  It is
deliberately filesystem-rooted (no imports of the analysed modules —
everything is AST-level), so linting cannot be perturbed by import-time
side effects and works on trees that do not import cleanly.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

from repro.lint.astutil import ModuleContext
from repro.lint.baseline import BASELINE_NAME, apply_baseline, load_baseline
from repro.lint.determinism import check_determinism
from repro.lint.fingerprint import MANIFEST_NAME, drift_findings, write_manifest
from repro.lint.hotpath import check_hotpath
from repro.lint.report import LintReport
from repro.lint.rules import Finding
from repro.lint.schema import check_schema_docs, check_schema_literals
from repro.schemas import CODE_SCHEMA_VERSION

#: Per-module checkers, in reporting-family order.
MODULE_CHECKS = (check_determinism, check_hotpath, check_schema_literals)


def analyze_source(source: str, module: str,
                   path: Optional[str] = None) -> List[Finding]:
    """Run the per-module checkers on one source string (test entry)."""
    ctx = ModuleContext(module=module,
                        path=path or module.replace(".", "/") + ".py",
                        source=source)
    findings: List[Finding] = []
    for check in MODULE_CHECKS:
        findings.extend(check(ctx))
    return findings


class LintEngine:
    """One configured lint run over a repo checkout."""

    def __init__(self, repo_root: str,
                 baseline_path: Optional[str] = None,
                 manifest_path: Optional[str] = None,
                 rules: Optional[Sequence[str]] = None):
        self.repo_root = os.path.abspath(repo_root)
        self.src_root = os.path.join(self.repo_root, "src")
        self.baseline_path = baseline_path or os.path.join(
            self.repo_root, BASELINE_NAME)
        self.manifest_path = manifest_path or os.path.join(
            self.repo_root, MANIFEST_NAME)
        self.rules = tuple(rules) if rules else None

    # -- enumeration ------------------------------------------------------

    def source_files(self) -> List[str]:
        """``src``-relative posix paths of every linted module."""
        package_root = os.path.join(self.src_root, "repro")
        out: List[str] = []
        for dirpath, dirnames, filenames in os.walk(package_root):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(".py"):
                    rel = os.path.relpath(os.path.join(dirpath, name),
                                          self.src_root)
                    out.append(rel.replace(os.sep, "/"))
        return out

    @staticmethod
    def module_name(rel_path: str) -> str:
        parts = rel_path[:-3].split("/")  # strip ".py"
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    # -- the run ----------------------------------------------------------

    def run(self, skip_drift: bool = False) -> LintReport:
        raw: List[Finding] = []
        files = self.source_files()
        for rel in files:
            path = os.path.join(self.src_root, *rel.split("/"))
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            ctx = ModuleContext(module=self.module_name(rel),
                                path="src/" + rel, source=source)
            for check in MODULE_CHECKS:
                raw.extend(check(ctx))
        raw.extend(check_schema_docs(self.repo_root))
        if not skip_drift:
            raw.extend(drift_findings(self.src_root, self.manifest_path,
                                      CODE_SCHEMA_VERSION))
        raw = self._filter_rules(raw)

        entries, baseline_errors = load_baseline(self.baseline_path)
        baseline_rel = os.path.relpath(self.baseline_path, self.repo_root)
        kept, suppressed = apply_baseline(raw, entries, baseline_rel)
        kept.extend(baseline_errors)
        # Filter last so a --select run doesn't misread unrelated
        # baseline entries as stale (LINT030) or resurface their errors.
        return LintReport(findings=self._filter_rules(kept),
                          suppressed=suppressed,
                          files_checked=len(files))

    def update_manifest(self) -> int:
        """Refresh the fingerprint manifest; returns the module count."""
        payload = write_manifest(self.manifest_path, self.src_root,
                                 CODE_SCHEMA_VERSION)
        return len(payload["fingerprints"])  # type: ignore[arg-type]

    def _filter_rules(self, findings: Iterable[Finding]) -> List[Finding]:
        if self.rules is None:
            return list(findings)
        return [f for f in findings if f.rule in self.rules]
