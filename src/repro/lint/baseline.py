"""Suppression baseline: justified, audited exceptions (LINT030/031).

The baseline (``lint-baseline.json``, ``repro.lint.baseline/1``) lists
findings that are *intentional* — each entry carries a human-written
justification, and matching is by ``(rule, path, symbol)`` so entries
survive unrelated edits but go stale (LINT030) the moment the code they
excuse disappears.  An entry without a justification is itself an error
(LINT031): the whole point is that every suppression is an argument,
not a mute button.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.lint.rules import Finding, severity_of
from repro.schemas import schema_string

BASELINE_SCHEMA = schema_string("repro.lint.baseline", 1)

#: Default baseline location, relative to the repo root.
BASELINE_NAME = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    justification: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


def load_baseline(path: str) -> Tuple[List[BaselineEntry], List[Finding]]:
    """Parse the baseline; malformed entries become LINT031 findings."""
    try:
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
    except FileNotFoundError:
        return [], []
    except ValueError:
        return [], [_invalid(path, "baseline file is not valid JSON")]
    if not isinstance(raw, dict) or raw.get("schema") != BASELINE_SCHEMA:
        return [], [_invalid(
            path, f"baseline schema must be {BASELINE_SCHEMA!r}")]
    entries: List[BaselineEntry] = []
    findings: List[Finding] = []
    for i, item in enumerate(raw.get("entries", [])):
        if not isinstance(item, dict):
            findings.append(_invalid(path, f"entry #{i} is not an object"))
            continue
        missing = [k for k in ("rule", "path", "symbol") if not item.get(k)]
        if missing:
            findings.append(_invalid(
                path, f"entry #{i} is missing {', '.join(missing)}"))
            continue
        justification = str(item.get("justification", "")).strip()
        if not justification:
            findings.append(_invalid(
                path,
                f"entry #{i} ({item['rule']} {item['path']} "
                f"[{item['symbol']}]) has no justification",
                hint="every suppression must say *why* the finding is "
                     "intentional"))
            continue
        entries.append(BaselineEntry(
            rule=str(item["rule"]), path=str(item["path"]),
            symbol=str(item["symbol"]), justification=justification))
    return entries, findings


def apply_baseline(findings: List[Finding],
                   entries: List[BaselineEntry],
                   baseline_path: str) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, suppressed); stale entries -> LINT030."""
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
        e.key(): e for e in entries}
    used: set = set()
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        entry = by_key.get((f.rule, f.path, f.symbol))
        if entry is not None:
            used.add(entry.key())
            suppressed.append(f)
        else:
            kept.append(f)
    for entry in entries:
        if entry.key() not in used:
            kept.append(Finding(
                rule="LINT030", severity=severity_of("LINT030"),
                path=baseline_path, line=0,
                symbol=f"{entry.rule}:{entry.path}:{entry.symbol}",
                message="baseline entry no longer matches any finding",
                hint="the code it excused is gone or fixed; delete the "
                     "entry"))
    return kept, suppressed


def _invalid(path: str, message: str, hint: str = "") -> Finding:
    return Finding(rule="LINT031", severity=severity_of("LINT031"),
                   path=path, line=0, symbol="<baseline>",
                   message=message, hint=hint)
