"""Schema-governance rules LINT020 and LINT021.

Every versioned artifact marker (``"repro.telemetry/1"``-style strings)
must come from :data:`repro.schemas.SCHEMA_REGISTRY` via
``schema_string()`` — a literal that is not in the registry is a schema
nobody owns (LINT020).  And every *registered* marker must be mentioned
in the docs (README.md or docs/*.md), because an artifact format that
consumers cannot look up is not governed either (LINT021).
"""

from __future__ import annotations

import os
import re
from typing import List

from repro.lint.astutil import ModuleContext, constant_str_nodes
from repro.lint.rules import Finding, severity_of
from repro.schemas import is_registered, registered_markers

#: What a versioned artifact marker looks like.
_MARKER_RE = re.compile(r"repro\.[a-z0-9_.]+/[0-9]+")


def check_schema_literals(ctx: ModuleContext) -> List[Finding]:
    """LINT020: every ``repro.*/N`` string literal must be registered."""
    findings: List[Finding] = []
    for node, value in constant_str_nodes(ctx.tree):
        if not _MARKER_RE.fullmatch(value):
            continue
        if is_registered(value):
            # Registered markers as literals are tolerated in tests and
            # docs examples; in src they should come from schema_string(),
            # but that is a style preference the registry already keeps
            # honest (drift shows up as a KeyError at import time).
            continue
        findings.append(Finding(
            rule="LINT020", severity=severity_of("LINT020"), path=ctx.path,
            line=getattr(node, "lineno", 0), symbol=ctx.symbol_of(node),
            message=f"schema marker {value!r} is not in "
                    f"repro.schemas.SCHEMA_REGISTRY",
            hint="register it (name, version, owning module) and import "
                 "it via schema_string()"))
    return findings


def check_schema_docs(repo_root: str) -> List[Finding]:
    """LINT021: every registered marker is documented somewhere."""
    corpus = _docs_corpus(repo_root)
    findings: List[Finding] = []
    for marker in sorted(registered_markers()):
        if marker not in corpus:
            findings.append(Finding(
                rule="LINT021", severity=severity_of("LINT021"),
                path="docs/lint.md", line=0, symbol="<docs>",
                message=f"registered schema marker {marker!r} is not "
                        f"documented in README.md or docs/",
                hint="add it to the schema-registry table in docs/lint.md"))
    return findings


def _docs_corpus(repo_root: str) -> str:
    chunks: List[str] = []
    readme = os.path.join(repo_root, "README.md")
    if os.path.isfile(readme):
        with open(readme, encoding="utf-8") as handle:
            chunks.append(handle.read())
    docs_dir = os.path.join(repo_root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                with open(os.path.join(docs_dir, name),
                          encoding="utf-8") as handle:
                    chunks.append(handle.read())
    return "\n".join(chunks)
