"""Shared AST machinery for the lint checkers.

:class:`ModuleContext` parses one module, annotates parent links (the
stdlib AST has none), resolves import aliases to qualified names, and
maps nodes to their enclosing symbol (``Class.method``) — everything a
checker needs to produce anchored findings without re-walking.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

_PARENT = "_lint_parent"

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class ModuleContext:
    """One parsed module plus the derived lookup structures."""

    def __init__(self, module: str, path: str, source: str):
        self.module = module          # dotted name, e.g. "repro.core.prb"
        self.path = path              # repo-relative posix path
        self.source = source
        self.tree = ast.parse(source)
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                setattr(child, _PARENT, parent)
        self.aliases = module_aliases(self.tree)

    # -- navigation ------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, _PARENT, None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def symbol_of(self, node: ast.AST) -> str:
        """``Class.method``-style enclosing symbol, or ``<module>``."""
        names: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, _SCOPE_NODES):
                names.append(current.name)
            current = self.parent(current)
        return ".".join(reversed(names)) if names else "<module>"

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    # -- name resolution -------------------------------------------------

    def qualname_of_call(self, call: ast.Call) -> Optional[str]:
        """Resolve a call target through the module's import aliases.

        ``random.Random(...)`` under ``import random`` -> "random.Random";
        ``Random(...)`` under ``from random import Random`` ->
        "random.Random".  Returns ``None`` for targets that do not reach
        back to an import (method calls on local objects, builtins).
        """
        return resolve_qualname(call.func, self.aliases)


def walk_function_body(func: ast.AST) -> Iterator[ast.AST]:
    """Yield the nodes of a function's own body, not descending into
    nested function/class definitions (they get their own visit)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> qualified dotted name, from the module's imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # "import a.b" binds "a" to package "a"; "import a.b as c"
                # binds "c" to "a.b".
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_qualname(node: ast.AST,
                     aliases: Dict[str, str]) -> Optional[str]:
    """Qualified dotted name of an expression, through import aliases."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def receiver_key(node: ast.AST) -> str:
    """A structural key identifying a call receiver expression."""
    return ast.dump(node)


def constant_str_nodes(tree: ast.Module) -> Iterator[Tuple[ast.Constant, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            yield node, node.value


def decorator_names(node: ast.ClassDef) -> List[str]:
    """Last-component names of a class's decorators (call or bare)."""
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.append(target.attr)
        elif isinstance(target, ast.Name):
            names.append(target.id)
    return names


def base_names(node: ast.ClassDef) -> List[str]:
    """Last-component names of a class's bases."""
    names = []
    for base in node.bases:
        if isinstance(base, ast.Attribute):
            names.append(base.attr)
        elif isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Subscript):  # Generic[...] style
            inner = base.value
            if isinstance(inner, ast.Attribute):
                names.append(inner.attr)
            elif isinstance(inner, ast.Name):
                names.append(inner.id)
    return names
