"""AST-normalised module fingerprints and the drift manifest (LINT022).

A module's *fingerprint* is the SHA-256 of a canonical dump of its AST
with docstrings stripped.  Comments, whitespace, string-quoting style
and docstring edits do not change the AST, so the fingerprint is stable
under formatting-only edits and changes exactly when the module's
*semantics-bearing structure* changes (``tests/test_lint_fingerprint.py``
property-checks both directions).

The committed manifest (``lint-fingerprints.json``,
``repro.lint.fingerprints/1``) records the fingerprint of every
payload-affecting module together with the ``CODE_SCHEMA_VERSION`` it
was taken under::

    {"schema": "repro.lint.fingerprints/1",
     "code_schema_version": 1,
     "fingerprints": {"repro/core/ssmt.py": "<sha256>", ...}}

The drift gate compares current fingerprints against the manifest:

* a fingerprint differs while ``CODE_SCHEMA_VERSION`` still equals the
  manifest's -> LINT022 (simulator semantics may have changed without
  invalidating the result cache; bump the version, or refresh the
  manifest if the change is provably payload-neutral);
* ``CODE_SCHEMA_VERSION`` differs from the manifest's -> LINT022 (the
  bump must land together with a refreshed manifest so the next drift
  starts from a clean base).

``repro lint --update-manifest`` performs the refresh; the explicit
command *is* the auditable "I thought about cache identity" step.

The canonical dump deliberately skips empty/``None`` fields so that
version-dependent AST additions (e.g. ``type_params`` on 3.12) do not
change fingerprints across the CPython versions CI runs.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from typing import Dict, List, Tuple

from repro.lint.rules import PAYLOAD_PREFIXES, Finding, severity_of
from repro.schemas import schema_string

FINGERPRINT_SCHEMA = schema_string("repro.lint.fingerprints", 1)

#: Default manifest location, relative to the repo root.
MANIFEST_NAME = "lint-fingerprints.json"


# -- normalisation --------------------------------------------------------

def _strip_docstrings(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = node.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                del body[0]


def _canonical(node: object) -> str:
    """Version-tolerant structural dump (see module docstring)."""
    if isinstance(node, ast.AST):
        parts = []
        for name, value in ast.iter_fields(node):
            if value is None or (isinstance(value, list) and not value):
                continue
            if name == "type_comment":
                continue
            parts.append(f"{name}={_canonical(value)}")
        return f"{type(node).__name__}({','.join(parts)})"
    if isinstance(node, list):
        return "[" + ",".join(_canonical(v) for v in node) + "]"
    return repr(node)


def normalize_source(source: str) -> str:
    """The canonical structural rendering a fingerprint hashes over."""
    tree = ast.parse(source)
    _strip_docstrings(tree)
    return _canonical(tree)


def fingerprint_source(source: str) -> str:
    """SHA-256 hex of the AST-normalised source."""
    blob = normalize_source(source).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# -- manifest -------------------------------------------------------------

def payload_module_files(src_root: str) -> List[str]:
    """Repo ``src``-relative posix paths of every fingerprinted module."""
    out: List[str] = []
    for prefix in PAYLOAD_PREFIXES:
        absolute = os.path.join(src_root, *prefix.split("/"))
        if prefix.endswith(".py"):
            if os.path.isfile(absolute):
                out.append(prefix)
            continue
        for dirpath, _dirnames, filenames in os.walk(absolute):
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), src_root)
                out.append(rel.replace(os.sep, "/"))
    return sorted(set(out))


def compute_fingerprints(src_root: str) -> Dict[str, str]:
    fingerprints: Dict[str, str] = {}
    for rel in payload_module_files(src_root):
        path = os.path.join(src_root, *rel.split("/"))
        with open(path, encoding="utf-8") as handle:
            fingerprints[rel] = fingerprint_source(handle.read())
    return fingerprints


def write_manifest(manifest_path: str, src_root: str,
                   code_schema_version: int) -> Dict[str, object]:
    payload = {
        "schema": FINGERPRINT_SCHEMA,
        "code_schema_version": code_schema_version,
        "fingerprints": compute_fingerprints(src_root),
    }
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_manifest(manifest_path: str) -> Dict[str, object]:
    with open(manifest_path, encoding="utf-8") as handle:
        return json.load(handle)


# -- the gate -------------------------------------------------------------

def drift_findings(src_root: str, manifest_path: str,
                   current_version: int) -> List[Finding]:
    """LINT022 findings for the current tree against the manifest."""
    rel_manifest = os.path.basename(manifest_path)

    def finding(message: str, hint: str) -> Finding:
        return Finding(rule="LINT022", severity=severity_of("LINT022"),
                       path=rel_manifest, line=0, symbol="<manifest>",
                       message=message, hint=hint)

    try:
        manifest = load_manifest(manifest_path)
    except (OSError, ValueError):
        return [finding(
            "fingerprint manifest missing or unreadable",
            "run 'repro lint --update-manifest' and commit the result")]
    if manifest.get("schema") != FINGERPRINT_SCHEMA:
        return [finding(
            f"manifest schema {manifest.get('schema')!r} != "
            f"{FINGERPRINT_SCHEMA!r}",
            "run 'repro lint --update-manifest'")]

    recorded_version = manifest.get("code_schema_version")
    recorded: Dict[str, str] = dict(manifest.get("fingerprints", {}))
    current = compute_fingerprints(src_root)
    changed, added, removed = _diff(recorded, current)

    findings: List[Finding] = []
    if recorded_version != current_version:
        findings.append(finding(
            f"CODE_SCHEMA_VERSION is {current_version} but the manifest "
            f"was taken under {recorded_version}",
            "a version bump must land with a refreshed manifest: run "
            "'repro lint --update-manifest' and commit both"))
        return findings  # per-module diffs are implied by the bump
    for rel in changed:
        findings.append(Finding(
            rule="LINT022", severity=severity_of("LINT022"), path=rel,
            line=0, symbol="<module>",
            message="payload-affecting module changed without a "
                    "CODE_SCHEMA_VERSION bump",
            hint="if simulator semantics changed, bump "
                 "CODE_SCHEMA_VERSION in repro/schemas.py; either way "
                 "refresh with 'repro lint --update-manifest'"))
    for rel in added:
        findings.append(Finding(
            rule="LINT022", severity=severity_of("LINT022"), path=rel,
            line=0, symbol="<module>",
            message="new payload-affecting module is not in the "
                    "fingerprint manifest",
            hint="run 'repro lint --update-manifest'"))
    for rel in removed:
        findings.append(finding(
            f"manifest entry {rel} no longer exists in the tree",
            "run 'repro lint --update-manifest'"))
    return findings


def _diff(recorded: Dict[str, str],
          current: Dict[str, str]) -> Tuple[List[str], List[str], List[str]]:
    changed = sorted(rel for rel in recorded.keys() & current.keys()
                     if recorded[rel] != current[rel])
    added = sorted(current.keys() - recorded.keys())
    removed = sorted(recorded.keys() - current.keys())
    return changed, added, removed
