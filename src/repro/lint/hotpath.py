"""Hot-path discipline rules LINT010-013.

PR 5 bought ~2.1x simulator throughput with a specific set of shapes:
``__slots__`` on per-entry classes, one fused ``predict_and_update``
call per retired branch, observability hooks dispatched behind a single
``is not None`` test, and uniform ``*Stats`` export through
``StatsBase``.  These rules keep refactors (the batched kernel, the
engine-kernel extraction) from quietly regressing those shapes.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.astutil import (
    ModuleContext,
    base_names,
    decorator_names,
    receiver_key,
    walk_function_body,
)
from repro.lint.rules import (
    FUSED_SCOPE,
    HOOK_ATTRS,
    HOT_MODULES,
    Finding,
    in_scope,
    severity_of,
)

#: Base classes whose subclasses have no use for ``__slots__``.
_SLOTS_EXEMPT_BASES = frozenset({
    "Enum", "IntEnum", "Flag", "IntFlag", "StrEnum", "Protocol",
    "NamedTuple", "TypedDict", "Exception", "BaseException",
})

#: Implementations of the predictor interface itself are allowed to call
#: the unfused halves (the default fused method is defined in terms of
#: them); the discipline binds *consumers* such as the retire loop.
_FUSED_EXEMPT_FUNCTIONS = frozenset({
    "predict", "update", "predict_and_update",
})


def _finding(ctx: ModuleContext, rule: str, node: ast.AST, message: str,
             hint: str = "") -> Finding:
    return Finding(rule=rule, severity=severity_of(rule), path=ctx.path,
                   line=getattr(node, "lineno", 0),
                   symbol=ctx.symbol_of(node), message=message, hint=hint)


# -- LINT010: __slots__ in hot modules ------------------------------------

def check_slots(ctx: ModuleContext) -> List[Finding]:
    if not in_scope(ctx.module, HOT_MODULES):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if "dataclass" in decorator_names(node):
            continue  # dataclasses stay dict-backed for 3.9 compat
        bases = set(base_names(node))
        if bases & _SLOTS_EXEMPT_BASES or node.name.endswith(
                ("Error", "Exception")):
            continue
        if not _declares_slots(node):
            findings.append(_finding(
                ctx, "LINT010", node,
                f"class {node.name} in hot module {ctx.module} has no "
                f"__slots__",
                "per-instance dicts cost memory and attribute-lookup "
                "time on the retire path; declare __slots__"))
    return findings


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"):
                return True
    return False


# -- LINT011: fused predict_and_update ------------------------------------

def check_fused_predictor(ctx: ModuleContext) -> List[Finding]:
    if not in_scope(ctx.module, FUSED_SCOPE):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in _FUSED_EXEMPT_FUNCTIONS:
            continue
        predicts: Dict[str, ast.Call] = {}
        updates: Dict[str, ast.Call] = {}
        for sub in walk_function_body(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func,
                                                        ast.Attribute):
                key = receiver_key(sub.func.value)
                if sub.func.attr == "predict":
                    predicts.setdefault(key, sub)
                elif sub.func.attr == "update":
                    updates.setdefault(key, sub)
        for key in predicts.keys() & updates.keys():
            call = updates[key]
            findings.append(_finding(
                ctx, "LINT011", call,
                f"{ctx.symbol_of(call)} calls .predict() and .update() "
                f"on the same receiver",
                "route through the fused predict_and_update() (one "
                "index computation, bit-identical by contract)"))
    return findings


# -- LINT012: is-None fast-path guards on observability hooks -------------

def check_hook_guards(ctx: ModuleContext) -> List[Finding]:
    if not in_scope(ctx.module, HOT_MODULES):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(_check_function_hooks(ctx, node))
    return findings


def _check_function_hooks(ctx: ModuleContext,
                          func: ast.AST) -> List[Finding]:
    # Aliases: ``log = self.event_log`` makes Name("log") stand for the
    # hook for the rest of the function.
    aliases: Dict[str, str] = {}
    for sub in walk_function_body(func):
        if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)):
            attr = _hook_attr(sub.value)
            if attr is not None:
                aliases[sub.targets[0].id] = attr
    findings: List[Finding] = []
    for sub in walk_function_body(func):
        if not (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)):
            continue
        attr = _hook_attr(sub.func.value, aliases)
        if attr is None:
            continue
        if func.name == "__init__":
            continue  # construction-time wiring, not the hot path
        if not _is_guarded(ctx, sub, attr, aliases):
            findings.append(_finding(
                ctx, "LINT012", sub,
                f"hook call self.{attr}.{sub.func.attr}() without an "
                f"'is not None' fast-path guard",
                "wrap in 'if self.%s is not None:' so the detached case "
                "costs one identity test" % attr))
    return findings


def _hook_attr(node: ast.AST,
               aliases: Optional[Dict[str, str]] = None) -> Optional[str]:
    """The hook attribute an expression refers to, if any."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self" and node.attr in HOOK_ATTRS):
        return node.attr
    if aliases and isinstance(node, ast.Name):
        return aliases.get(node.id)
    return None


def _guard_covers(test: ast.AST, attr: str,
                  aliases: Dict[str, str]) -> bool:
    """Whether an ``if`` test establishes that the hook is attached."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_guard_covers(v, attr, aliases) for v in test.values)
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if (isinstance(test.ops[0], ast.IsNot)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            return _hook_attr(test.left, aliases) == attr
        return False
    # Bare truthiness: ``if self.telemetry:``
    return _hook_attr(test, aliases) == attr


def _is_guarded(ctx: ModuleContext, call: ast.Call, attr: str,
                aliases: Dict[str, str]) -> bool:
    # (a) an enclosing if/ternary whose test covers the hook
    child: ast.AST = call
    for anc in ctx.ancestors(call):
        if isinstance(anc, ast.If) and child is not anc.test:
            in_else = child in getattr(anc, "orelse", [])
            if not in_else and _guard_covers(anc.test, attr, aliases):
                return True
        if isinstance(anc, ast.IfExp) and child is anc.body:
            if _guard_covers(anc.test, attr, aliases):
                return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        child = anc
    # (b) an earlier early-exit guard in an enclosing block:
    #     ``if self.telemetry is None: return``
    return _early_exit_guard(ctx, call, attr, aliases)


def _early_exit_guard(ctx: ModuleContext, call: ast.Call, attr: str,
                      aliases: Dict[str, str]) -> bool:
    chain: List[ast.AST] = [call]
    for anc in ctx.ancestors(call):
        chain.append(anc)
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    for container in chain:
        body = getattr(container, "body", None)
        if not isinstance(body, list):
            continue
        inner: Set[int] = {id(n) for n in chain}
        for stmt in body:
            if id(stmt) in inner:
                break  # statements after the call's branch don't count
            if (isinstance(stmt, ast.If) and stmt.body
                    and isinstance(stmt.body[-1],
                                   (ast.Return, ast.Continue, ast.Raise))
                    and _is_none_test(stmt.test, attr, aliases)):
                return True
    return False


def _is_none_test(test: ast.AST, attr: str,
                  aliases: Dict[str, str]) -> bool:
    return (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and _hook_attr(test.left, aliases) == attr)


# -- LINT013: *Stats derive StatsBase -------------------------------------

def check_stats_base(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Stats") or node.name == "StatsBase":
            continue
        if "StatsBase" not in base_names(node):
            findings.append(_finding(
                ctx, "LINT013", node,
                f"{node.name} does not derive StatsBase",
                "StatsBase gives the uniform as_dict()/snapshot() export "
                "the telemetry registry and sweep payloads rely on"))
    return findings


def check_hotpath(ctx: ModuleContext) -> List[Finding]:
    """All hot-path rules for one module."""
    return (check_slots(ctx) + check_fused_predictor(ctx)
            + check_hook_guards(ctx) + check_stats_base(ctx))
