"""Stride/last-value predictor with saturating confidence."""

from __future__ import annotations

from typing import Dict, Optional

_MASK = (1 << 64) - 1


class StrideEntry:
    """Per-static-PC prediction state."""

    __slots__ = ("last_value", "stride", "confidence")

    def __init__(self, value: int = 0):
        self.last_value = value
        self.stride = 0
        self.confidence = 0

    def train(self, value: int, max_confidence: int) -> None:
        new_stride = (value - self.last_value) & _MASK
        if new_stride == self.stride:
            if self.confidence < max_confidence:
                self.confidence += 1
        else:
            self.stride = new_stride
            self.confidence = 0
        self.last_value = value

    def predict(self, ahead: int = 1) -> int:
        return (self.last_value + self.stride * ahead) & _MASK


class StridePredictor:
    """Table of :class:`StrideEntry` keyed by instruction PC.

    ``capacity`` bounds the table (FIFO eviction of the oldest trained PC)
    so the model reflects a finite hardware structure; the default of 16K
    entries is generous but off the critical path, as the paper assumes.
    """

    def __init__(self, capacity: int = 16 * 1024, max_confidence: int = 7,
                 confidence_threshold: int = 4):
        if confidence_threshold > max_confidence:
            raise ValueError("threshold cannot exceed max confidence")
        self.capacity = capacity
        self.max_confidence = max_confidence
        self.confidence_threshold = confidence_threshold
        self._entries: Dict[int, StrideEntry] = {}
        self.trains = 0
        self.predictions = 0

    def train(self, pc: int, value: int) -> None:
        """Observe a retired instance of the instruction at ``pc``."""
        self.trains += 1
        entry = self._entries.get(pc)
        if entry is None:
            if len(self._entries) >= self.capacity:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[pc] = StrideEntry(value)
        else:
            entry.train(value, self.max_confidence)

    def is_confident(self, pc: int) -> bool:
        entry = self._entries.get(pc)
        return entry is not None and entry.confidence >= self.confidence_threshold

    def confidence(self, pc: int) -> int:
        entry = self._entries.get(pc)
        return entry.confidence if entry is not None else 0

    def predict(self, pc: int, ahead: int = 1) -> Optional[int]:
        """Predict the value of the next ``ahead``-th instance of ``pc``."""
        entry = self._entries.get(pc)
        if entry is None:
            return None
        self.predictions += 1
        return entry.predict(ahead)

    def __len__(self) -> int:
        return len(self._entries)
