"""Address predictor for load base registers (paper §4.2.5).

Address-pruned loads keep the load itself in the microthread; the
``Ap_Inst`` supplies the *base register value*, which this predictor
learns per load PC.  Strides arise naturally from array walks.
"""

from __future__ import annotations

from typing import Optional

from repro.valuepred.stride import StridePredictor


class AddressPredictor(StridePredictor):
    """Stride predictor keyed by load PC, trained on base-register values."""

    def __init__(self, capacity: int = 16 * 1024, max_confidence: int = 7,
                 confidence_threshold: int = 4):
        super().__init__(capacity, max_confidence, confidence_threshold)

    def train_load(self, load_pc: int, base_value: int) -> None:
        self.train(load_pc, base_value)

    def predict_base(self, load_pc: int, ahead: int = 1) -> Optional[int]:
        return self.predict(load_pc, ahead)
