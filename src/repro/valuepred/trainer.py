"""Retirement-stream training of the value and address predictors.

The paper trains both predictors "on the primary thread's retirement
stream just before the instructions enter the PRB" and stores the current
confidence with each retired instruction so the Microthread Builder can
spot pruning opportunities without re-querying the predictors.
"""

from __future__ import annotations

from repro.sim.trace import DynamicInstruction
from repro.valuepred.address import AddressPredictor
from repro.valuepred.stride import StridePredictor


class PredictorTrainer:
    """Feeds retiring instructions to the value/address predictors.

    ``observe`` returns ``(value_confident, address_confident)`` — the
    confidence snapshot *before* training on this instance, which is what
    gets stored alongside the instruction in the PRB.
    """

    def __init__(self, value_predictor: StridePredictor = None,
                 address_predictor: AddressPredictor = None):
        self.value_predictor = (
            value_predictor if value_predictor is not None else StridePredictor()
        )
        self.address_predictor = (
            address_predictor if address_predictor is not None else AddressPredictor()
        )

    def observe(self, rec: DynamicInstruction) -> tuple:
        """Train on one retired instruction; return prior confidence flags."""
        pc = rec.pc
        value_predictor = self.value_predictor
        value_confident = value_predictor.is_confident(pc)
        address_confident = False
        inst = rec.inst
        if inst.dest is not None:
            value_predictor.train(pc, rec.result)
        if inst.is_load:
            address_confident = self.address_predictor.is_confident(pc)
            # Base register value = effective address minus displacement.
            self.address_predictor.train_load(pc, (rec.ea - inst.imm) & ((1 << 64) - 1))
        return value_confident, address_confident
