"""Back-end value and address predictors used for pruning (paper §4.2.5).

Both are stride/last-value predictors with integrated confidence, trained
on the primary thread's retirement stream just before instructions enter
the Post-Retirement Buffer.  The paper restricts them to "constant and
stride-based predictions" so that look-ahead prediction (the ``ahead``
parameter of ``predict``) is trivial — we do the same.
"""

from repro.valuepred.stride import StridePredictor, StrideEntry
from repro.valuepred.address import AddressPredictor
from repro.valuepred.trainer import PredictorTrainer

__all__ = ["StridePredictor", "StrideEntry", "AddressPredictor", "PredictorTrainer"]
