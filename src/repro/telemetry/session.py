"""TelemetrySession: one attachable bundle of registry + sampler + tracer.

The session is the engine-facing surface of the telemetry layer, built
on the same opt-in pattern as the runtime sanitizer ("simsan"): when no
session is attached the engine pays a single ``is None`` test per hook
site; when attached, each hook does O(1) work (the sampler's full row
read happens only at interval boundaries).

Wiring::

    session = TelemetrySession(sample_every=2000)
    result, engine = run_ssmt(trace, config, telemetry=session)
    report = session.build_report("gcc", result, engine)
    report.write_json("out.json")

The session registers every core structure's stats object into its
:class:`~repro.telemetry.registry.MetricsRegistry` under stable dotted
prefixes (``path_cache.*``, ``builder.*``, ``spawn.*``,
``prediction_cache.*``, ``microram.*``, ``engine.*``, and once a run
starts, ``branch.*``, ``timing.*``, ``caches.*``), and feeds
registry-native histograms with routine shapes and lifecycle latencies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.report import RunReport
from repro.telemetry.sampler import IntervalSampler
from repro.telemetry.tracer import ThreadTracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.microthread import Microthread
    from repro.core.path import PathEvent
    from repro.core.spawn import ActiveMicrothread
    from repro.core.ssmt import SSMTEngine
    from repro.sim.trace import DynamicInstruction, Trace
    from repro.uarch.timing import OoOTimingModel, TimingResult


class TelemetrySession:
    """Registry + interval sampler + lifecycle tracer; see module docstring."""

    def __init__(self, sample_every: int = 2000,
                 trace_spans: bool = True,
                 max_spans: int = 10_000,
                 term_pc: Optional[int] = None,
                 max_samples: int = 100_000):
        self.registry = MetricsRegistry()
        self.sampler: Optional[IntervalSampler] = (
            IntervalSampler(sample_every, max_samples=max_samples)
            if sample_every else None)
        self.tracer: Optional[ThreadTracer] = (
            ThreadTracer(max_spans=max_spans, term_pc=term_pc)
            if trace_spans else None)
        self._attached: Optional["SSMTEngine"] = None
        self._run_registered = False
        #: pending (writer, fetch_cycle) per branch trace index, stashed at
        #: Prediction Cache lookup and consumed at outcome classification
        self._lookup_stash: Dict[int, Tuple[Any, int]] = {}

        reg = self.registry
        self.h_routine_size = reg.histogram(
            "microthread.routine_size",
            "micro-ops per built routine (log2 buckets)")
        self.h_chain_length = reg.histogram(
            "microthread.chain_length",
            "longest dependence chain per built routine")
        self.h_separation = reg.histogram(
            "microthread.separation",
            "instructions between spawn point and terminating branch")
        self.h_queue = reg.histogram(
            "lifecycle.queue_cycles",
            "spawn-point fetch to microthread dispatch")
        self.h_execute = reg.histogram(
            "lifecycle.execute_cycles",
            "dispatch to Store_PCache completion")
        self.h_early_by = reg.histogram(
            "prediction.early_by_cycles",
            "cycles a consumed prediction beat the target fetch by")
        self.h_late_by = reg.histogram(
            "prediction.late_by_cycles",
            "cycles a consumed prediction missed the target fetch by")

    # -- attachment ------------------------------------------------------------

    def attach(self, engine: "SSMTEngine") -> None:
        """Register every engine structure into the registry (called by
        the engine's constructor when a session is passed)."""
        if self._attached is engine:
            return
        if self._attached is not None:
            raise ValueError("telemetry session already attached to "
                             "another engine")
        self._attached = engine
        reg = self.registry
        reg.register("path_cache", engine.path_cache.stats)
        reg.register_callback("path_cache", lambda: {
            "occupancy": len(engine.path_cache),
            "difficult_entries": engine.path_cache.difficult_count(),
        })
        reg.register("builder", engine.builder.stats)
        reg.register("spawn", engine.spawner.stats)
        reg.register_callback("spawn", lambda: {
            "active": len(engine.spawner.active),
        })
        reg.register("prediction_cache", engine.prediction_cache.stats)
        reg.register_callback("prediction_cache", lambda: {
            "occupancy": len(engine.prediction_cache),
        })
        reg.register("microram", engine.microram)
        reg.register_callback("engine", lambda: dict(
            {f"kind_{k}": v
             for k, v in sorted(engine.prediction_kind_counts.items())},
            microthread_correct=engine.correct_microthread_predictions,
            microthread_incorrect=engine.incorrect_microthread_predictions,
            throttled_paths=engine.throttled_paths,
        ))
        if engine.event_log is not None:
            log = engine.event_log
            reg.register_callback("events", lambda: dict(
                {f"count_{k}": v for k, v in sorted(log.counts.items())},
                stored=len(log),
                dropped=sum(log.dropped.values()),
            ))
        if self.tracer is not None:
            reg.register("tracer", self.tracer)

    def on_run_start(self, model: "OoOTimingModel",
                     trace: "Trace") -> None:
        """Bind run-scoped collectors (timing result, caches, predictor)."""
        if self._run_registered:
            return
        self._run_registered = True
        reg = self.registry
        if model.caches is not None:
            reg.register("caches", model.caches.stats)
        predictor = getattr(model, "predictor", None)
        if predictor is not None and hasattr(predictor, "as_dict"):
            reg.register("branch", predictor)

        def timing_view() -> Dict[str, Any]:
            result = model.result
            return result.as_dict(include_cache=False) \
                if result is not None else {}

        reg.register_callback("timing", timing_view)

    # -- engine hooks ----------------------------------------------------------

    def on_retire(self, engine: "SSMTEngine", idx: int,
                  rec: "DynamicInstruction", retire_cycle: int) -> None:
        if self.sampler is not None:
            self.sampler.on_retire(engine, idx, retire_cycle)

    @property
    def retire_hook(self) -> Optional[Callable[["SSMTEngine", int, int], None]]:
        """Bound per-retire callable, or None when nothing samples retires.

        The engine binds this once at attach and calls it directly —
        ``(engine, idx, retire_cycle)`` per retired instruction — instead
        of routing through :meth:`on_retire`.  One pass-through frame per
        retire is ~10% of the whole detached engine's per-instruction
        budget, which is exactly the overhead contract
        ``benchmarks/test_simulator_throughput.py`` enforces.  Subclasses
        adding per-retire work must override this, not just
        :meth:`on_retire`.
        """
        return self.sampler.on_retire if self.sampler is not None else None

    @property
    def control_hook(self) -> Optional[Callable[..., None]]:
        """Bound per-terminating-branch callable, or None when nothing
        observes branch resolutions.

        The engine binds this once at construction and dispatches
        ``(engine, idx, rec, outcome, fetch_cycle, resolve_cycle)`` per
        path-terminating branch.  The base session records nothing per
        branch (its counters come from the structures' own stats), so it
        returns ``None`` and the engine's dispatch stays one identity
        test; the observability layer's session
        (:class:`repro.obs.session.ObsSession`) overrides this to emit
        mispredict/occupancy events and drive the flight recorder.
        """
        return None

    def on_promote(self, event: "PathEvent", cycle: int) -> None:
        if self.tracer is not None:
            self.tracer.on_promote(event, cycle)

    def on_build(self, thread: "Microthread", event: "PathEvent",
                 cycle: int, build_latency: int) -> None:
        self.h_routine_size.observe(thread.routine_size)
        self.h_chain_length.observe(thread.longest_chain)
        self.h_separation.observe(thread.separation)
        if self.tracer is not None:
            self.tracer.on_build(thread, event, cycle, build_latency)

    def on_build_failed(self, event: "PathEvent", cycle: int,
                        reason: str) -> None:
        if self.tracer is not None:
            self.tracer.on_build_failed(event, cycle, reason)

    def on_demote(self, term_pc: int) -> None:
        if self.tracer is not None:
            self.tracer.on_demote(term_pc)

    def on_execute(self, instance: "ActiveMicrothread",
                   dispatch_cycle: int) -> None:
        self.h_queue.observe(max(0, dispatch_cycle - instance.spawn_cycle))
        self.h_execute.observe(
            max(0, instance.arrival_cycle - dispatch_cycle))
        if self.tracer is not None:
            self.tracer.on_execute(instance, dispatch_cycle)

    def note_lookup(self, idx: int, writer: Any, fetch_cycle: int) -> None:
        """Stash the Prediction Cache hit's writer so the upcoming outcome
        classification can be attributed to its span."""
        self._lookup_stash[idx] = (writer, fetch_cycle)

    def on_outcome(self, idx: int, rec: "DynamicInstruction", kind: str,
                   correct: bool) -> None:
        stashed = self._lookup_stash.pop(idx, None)
        if stashed is None:
            return
        writer, fetch_cycle = stashed
        arrival = getattr(writer, "arrival_cycle", None)
        if arrival is not None:
            if arrival <= fetch_cycle:
                self.h_early_by.observe(fetch_cycle - arrival)
            else:
                self.h_late_by.observe(arrival - fetch_cycle)
        if self.tracer is not None and writer is not None:
            self.tracer.on_outcome(writer, kind, correct, fetch_cycle)

    def on_run_end(self, engine: "SSMTEngine",
                   result: "TimingResult") -> None:
        if self.sampler is not None:
            self.sampler.flush(engine, result)
        if self.tracer is not None:
            self.tracer.finish()
        self._lookup_stash.clear()

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def build_report(self, benchmark: str, result: "TimingResult",
                     engine: "SSMTEngine") -> RunReport:
        """Assemble the full :class:`RunReport` for a finished run."""
        import dataclasses

        return RunReport(
            benchmark=benchmark,
            instructions=result.instructions,
            config=dataclasses.asdict(engine.config),
            timing=result.as_dict(),
            metrics=self.registry.snapshot(),
            samples=self.sampler.rows() if self.sampler is not None else [],
            spans=(self.tracer.span_rows()
                   if self.tracer is not None else []),
            routines=(self.tracer.routine_rows()
                      if self.tracer is not None else []),
            span_summary=(self.tracer.as_dict()
                          if self.tracer is not None else {}),
        )
