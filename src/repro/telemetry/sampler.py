"""Interval time-series sampling of a live SSMT run.

Every ``every`` retired instructions the sampler reads one row of
mechanism state — windowed misprediction rate, Prediction Cache hit
rate, Path Cache occupancy and difficult-entry count, spawn queue depth,
MicroRAM pressure and an IPC proxy — so a run can be plotted and diffed
over *time*, not just summarized at the end.  The paper's mechanism
ramps (training intervals, one build at a time), which a single final
number hides completely.

The sampler is driven by the engine's retire hook and reads the timing
model's live :class:`~repro.uarch.timing.TimingResult` for branch and
misprediction counts; rates are computed over the window (deltas), not
cumulatively, so late-run behavior is not averaged away.  A final
partial window, if any, is flushed at end of run and marked
``final=True`` so consumers can treat its shorter horizon specially.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.ssmt import SSMTEngine
    from repro.uarch.timing import TimingResult


@dataclass
class IntervalSample:
    """One time-series row; all rates are over the sample's window.

    ``cycles``, ``window_cycles`` and ``ipc`` are ``None`` when no
    retire-cycle information was available for the row (a flushed final
    window with neither a :class:`TimingResult` nor a live timing model
    to read) — unknown, rather than a fake ``0`` that would read as a
    stall."""

    index: int                    # sample ordinal, 0-based
    instructions: int             # cumulative retired instructions
    cycles: Optional[int]         # cumulative retire cycle (None = unknown)
    window_instructions: int
    window_cycles: Optional[int]
    ipc: Optional[float]          # window instructions / window cycles
    branches: int                 # window conditional+indirect branches
    mispredict_rate: float        # window effective mispredicts / branches
    hw_mispredict_rate: float     # window hardware mispredicts / branches
    pcache_hit_rate: float        # window Prediction Cache hits/(hits+misses)
    path_cache_occupancy: int     # resident Path Cache entries (point)
    path_cache_difficult: int     # entries with the Difficult bit (point)
    spawn_active: int             # in-flight microthreads (point)
    microram_routines: int        # resident routines (point)
    microram_pressure: float      # routines / capacity (point)
    prediction_cache_entries: int  # resident predictions (point)
    final: bool = False           # True for a flushed partial last window

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def csv_fields(cls) -> List[str]:
        return [field.name for field in dataclasses.fields(cls)]


@dataclass
class _Cumulative:
    """Counter values at the previous sample boundary."""

    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    effective_mispredicts: int = 0
    hw_mispredicts: int = 0
    pcache_hits: int = 0
    pcache_misses: int = 0


class IntervalSampler:
    """Records an :class:`IntervalSample` every N retired instructions."""

    def __init__(self, every: int = 2000, max_samples: int = 100_000):
        if every <= 0:
            raise ValueError("sampling interval must be positive")
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.every = every
        self.max_samples = max_samples
        self.samples: List[IntervalSample] = []
        self.dropped = 0          # rows not stored once max_samples was hit
        self._retired = 0
        self._prev = _Cumulative()

    # -- engine-driven hooks ---------------------------------------------------

    def on_retire(self, engine: "SSMTEngine", idx: int,
                  retire_cycle: int) -> None:
        self._retired += 1
        if self._retired % self.every == 0:
            self._record(engine, retire_cycle, final=False)

    def flush(self, engine: "SSMTEngine",
              result: Optional["TimingResult"] = None) -> None:
        """Record the trailing partial window, if any instructions retired
        since the last aligned sample (called at end of run).

        The final row's retire cycle comes from ``result`` when given,
        falling back to the engine's live timing result.  When neither
        carries a usable cycle count the row's cycle fields are recorded
        as unknown (``None``) instead of fabricating a zero-cycle window
        (which used to surface as ``ipc=0.0`` — a phantom stall)."""
        if self._retired % self.every == 0:
            return
        if result is None:
            result = engine.live_timing_result()
        cycles: Optional[int] = None
        if result is not None and result.cycles > self._prev.cycles:
            cycles = result.cycles
        self._record(engine, cycles, final=True)

    # -- measurement -----------------------------------------------------------

    def _record(self, engine: "SSMTEngine", retire_cycle: Optional[int],
                final: bool) -> None:
        timing = engine.live_timing_result()
        prev = self._prev
        cycles_known = retire_cycle is not None
        now = _Cumulative(
            instructions=self._retired,
            # An unknown retire cycle carries the previous boundary
            # forward so later windows stay consistent.
            cycles=retire_cycle if retire_cycle is not None else prev.cycles,
        )
        if timing is not None:
            now.branches = (timing.conditional_branches
                            + timing.indirect_branches)
            now.effective_mispredicts = timing.effective_mispredicts
            now.hw_mispredicts = timing.hw_mispredicts
        pstats = engine.prediction_cache.stats
        now.pcache_hits = pstats.hits
        now.pcache_misses = pstats.misses

        window_instructions = now.instructions - prev.instructions
        window_cycles: Optional[int] = (max(0, now.cycles - prev.cycles)
                                        if cycles_known else None)
        window_branches = now.branches - prev.branches
        window_lookups = ((now.pcache_hits - prev.pcache_hits)
                          + (now.pcache_misses - prev.pcache_misses))
        microram = engine.microram

        sample = IntervalSample(
            index=len(self.samples) + self.dropped,
            instructions=now.instructions,
            cycles=now.cycles if cycles_known else None,
            window_instructions=window_instructions,
            window_cycles=window_cycles,
            ipc=(round(window_instructions / window_cycles, 4)
                 if window_cycles else 0.0) if cycles_known else None,
            branches=window_branches,
            mispredict_rate=round(
                (now.effective_mispredicts - prev.effective_mispredicts)
                / window_branches, 4) if window_branches else 0.0,
            hw_mispredict_rate=round(
                (now.hw_mispredicts - prev.hw_mispredicts)
                / window_branches, 4) if window_branches else 0.0,
            pcache_hit_rate=round(
                (now.pcache_hits - prev.pcache_hits) / window_lookups, 4)
            if window_lookups else 0.0,
            path_cache_occupancy=len(engine.path_cache),
            path_cache_difficult=engine.path_cache.difficult_count(),
            spawn_active=len(engine.spawner.active),
            microram_routines=len(microram),
            microram_pressure=round(len(microram) / microram.capacity, 4),
            prediction_cache_entries=len(engine.prediction_cache),
            final=final,
        )
        self._prev = now
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        self.samples.append(sample)

    # -- export ---------------------------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        return [sample.as_dict() for sample in self.samples]

    def __len__(self) -> int:
        return len(self.samples)
