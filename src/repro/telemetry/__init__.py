"""Unified telemetry: metrics registry, interval samples, lifecycle spans.

This package is the observability layer over the whole reproduction
(see ``docs/telemetry.md`` for the metric catalogue and report schema):

* :mod:`repro.telemetry.registry` — typed :class:`MetricsRegistry`
  (counters, gauges, log2-bucketed histograms) plus the
  :class:`StatsBase` mixin giving every ``*Stats`` dataclass the uniform
  ``as_dict()``/``snapshot()`` surface.
* :mod:`repro.telemetry.sampler` — :class:`IntervalSampler`, a
  time-series of mechanism state every N retired instructions.
* :mod:`repro.telemetry.tracer` — :class:`ThreadTracer`, per-microthread
  lifecycle spans (promote → build → spawn → execute → ``Store_PCache``
  / abort / violation) with cause attribution and phase latencies.
* :mod:`repro.telemetry.session` — :class:`TelemetrySession`, the
  attachable bundle the SSMT engine hooks into (no-op when detached).
* :mod:`repro.telemetry.report` — :class:`RunReport` JSON/CSV exporter
  and ``BENCH_*.json`` trajectory artifacts.
"""

from repro.telemetry.registry import (
    CallbackCollector,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsBase,
)
from repro.telemetry.sampler import IntervalSample, IntervalSampler
from repro.telemetry.tracer import (
    CAUSE_MEMDEP_VIOLATION,
    CAUSE_PATH_DEVIATION,
    SPAN_STATUSES,
    RoutineRecord,
    ThreadSpan,
    ThreadTracer,
)
from repro.telemetry.session import TelemetrySession
from repro.telemetry.report import (
    BENCH_SCHEMA,
    SCHEMA,
    RunReport,
    load_report,
    write_bench_json,
)

__all__ = [
    "CallbackCollector",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsBase",
    "IntervalSample",
    "IntervalSampler",
    "CAUSE_MEMDEP_VIOLATION",
    "CAUSE_PATH_DEVIATION",
    "SPAN_STATUSES",
    "RoutineRecord",
    "ThreadSpan",
    "ThreadTracer",
    "TelemetrySession",
    "RunReport",
    "SCHEMA",
    "BENCH_SCHEMA",
    "load_report",
    "write_bench_json",
]
