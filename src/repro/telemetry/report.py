"""Machine-readable run reports (JSON / CSV) and ``BENCH_*.json``.

:class:`RunReport` bundles everything one timing run produced — the
machine/mechanism configuration, the final timing summary, a full
metrics-registry snapshot, the interval time-series and the microthread
lifecycle spans — under a versioned schema so external tooling (and the
repo's own regression trajectory) can consume it without scraping
stdout.

Schema (``repro.telemetry/1``)::

    {
      "schema": "repro.telemetry/1",
      "benchmark": str,
      "instructions": int,
      "config": {...},              # SSMTConfig fields
      "timing": {...},              # TimingResult.as_dict()
      "metrics": {...},             # MetricsRegistry.snapshot()
      "samples": [{...}, ...],      # IntervalSample rows
      "spans": [{...}, ...],        # ThreadSpan rows
      "routines": [{...}, ...],     # RoutineRecord rows
      "span_summary": {...}         # ThreadTracer.as_dict()
    }

``BENCH_*.json`` files (``repro.bench/1``) are flat benchmark artifacts
for the performance trajectory::

    {"schema": "repro.bench/1", "bench": str, "context": {...},
     "results": {...}}
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Dict, List, Optional

from repro.schemas import schema_string

SCHEMA = schema_string("repro.telemetry", 1)
BENCH_SCHEMA = schema_string("repro.bench", 1)


def _plain(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable data."""
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if hasattr(value, "as_dict"):
        return value.as_dict()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


@dataclass
class RunReport:
    """One run's full telemetry export; see module docstring."""

    benchmark: str
    instructions: int
    config: Dict[str, Any] = field(default_factory=dict)
    timing: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    samples: List[Dict[str, Any]] = field(default_factory=list)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    routines: List[Dict[str, Any]] = field(default_factory=list)
    span_summary: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "benchmark": self.benchmark,
            "instructions": self.instructions,
            "config": _plain(self.config),
            "timing": _plain(self.timing),
            "metrics": _plain(self.metrics),
            "samples": self.samples,
            "spans": self.spans,
            "routines": self.routines,
            "span_summary": _plain(self.span_summary),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def write_samples_csv(self, path: str) -> None:
        """The interval time-series alone, one row per sample."""
        from repro.telemetry.sampler import IntervalSample

        fields = IntervalSample.csv_fields()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for row in self.samples:
                writer.writerow(row)

    def write(self, path: str) -> None:
        """Write JSON, or the samples CSV when ``path`` ends in ``.csv``."""
        if path.endswith(".csv"):
            self.write_samples_csv(path)
        else:
            self.write_json(path)


def load_report(path: str) -> Dict[str, Any]:
    """Read a report back; raises on schema mismatch."""
    with open(path) as handle:
        data = json.load(handle)
    schema = data.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"{path}: schema {schema!r}, expected {SCHEMA!r}")
    return data


def write_bench_json(path: str, bench: str, results: Dict[str, Any],
                     context: Optional[Dict[str, Any]] = None) -> None:
    """Write a ``BENCH_*.json`` trajectory artifact."""
    payload = {
        "schema": BENCH_SCHEMA,
        "bench": bench,
        "context": _plain(context or {}),
        "results": _plain(results),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
