"""Typed metrics registry: counters, gauges, log2-bucketed histograms.

The registry is the aggregation point of the telemetry layer.  Core
structures do **not** pay a per-increment cost to feed it: their hot
paths keep mutating plain dataclass attributes (the ``*Stats`` objects),
and the registry *pulls* those values at snapshot time through the
collector protocol — any object exposing ``as_dict()``.  Registry-native
:class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments exist for
telemetry-side measurements (lifecycle latencies, routine shapes) where
an explicit ``observe``/``inc`` is the natural interface.

Namespacing is by dotted prefix: a collector registered under
``"path_cache"`` contributes ``path_cache.<field>`` keys to
:meth:`MetricsRegistry.snapshot`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

MetricValue = Union[int, float, Dict[str, Any]]

#: histograms bucket by ``value.bit_length()``: [0], [1], [2-3], [4-7], ...
HISTOGRAM_MAX_BUCKETS = 64


def _bucket_label(index: int) -> str:
    """Human-readable label for log2 bucket ``index``."""
    if index <= 0:
        return "0"
    if index == 1:
        return "1"
    lo = 1 << (index - 1)
    hi = (1 << index) - 1
    return f"{lo}-{hi}"


class Counter:
    """Monotonic integer metric."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount

    def get(self) -> int:
        return self.value


class Gauge:
    """Point-in-time numeric metric; either set directly or backed by a
    zero-argument callback evaluated at snapshot time (the pull model)."""

    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(self, name: str, help: str = "",
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.help = help
        self._value: float = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = value

    def get(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram:
    """Log2-bucketed distribution of non-negative integer observations.

    Bucket ``i`` holds values with ``bit_length() == i``: ``0`` alone,
    ``1`` alone, ``2-3``, ``4-7``, ``8-15``, ...  Exact powers of two
    therefore open a new bucket (``2**k`` has bit length ``k+1``), which
    is what the boundary tests pin down.  Negative observations are
    rejected — latencies and sizes are never negative here, so one would
    indicate a bug upstream.
    """

    __slots__ = ("name", "help", "buckets", "count", "total", "max_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.buckets: List[int] = [0] * HISTOGRAM_MAX_BUCKETS
        self.count = 0
        self.total = 0
        self.max_value = 0

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative observation "
                             f"{value}")
        index = min(value.bit_length(), HISTOGRAM_MAX_BUCKETS - 1)
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> Dict[str, int]:
        """Non-empty buckets keyed by their value-range label."""
        return {_bucket_label(i): n
                for i, n in enumerate(self.buckets) if n}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": round(self.mean, 4),
            "max": self.max_value,
            "buckets": self.bucket_counts(),
        }


class StatsBase:
    """Uniform ``as_dict()``/``snapshot()`` surface for ``*Stats``
    dataclasses.

    The per-structure statistics objects (``PathCacheStats``,
    ``BuildStats``, ``SpawnStats``, ...) derive from this and keep their
    plain-attribute increments — the uniformity lives entirely at the
    export boundary.  Fields come straight from the dataclass;
    ``@property`` members defined on the concrete class are exported as
    derived metrics.
    """

    def as_dict(self) -> Dict[str, Union[int, float]]:
        out: Dict[str, Union[int, float]] = {}
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, field.name)
            if isinstance(value, (int, float)):
                out[field.name] = value
        for klass in type(self).__mro__:
            for name, attr in vars(klass).items():
                if isinstance(attr, property) and name not in out:
                    value = getattr(self, name)
                    if isinstance(value, (int, float)):
                        out[name] = round(value, 6)
        return out

    def snapshot(self) -> Dict[str, Union[int, float]]:
        """Alias of :meth:`as_dict` (point-in-time copy)."""
        return self.as_dict()


class CallbackCollector:
    """Adapter turning a dict-returning callable into a collector."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], Mapping[str, Any]]) -> None:
        self._fn = fn

    def as_dict(self) -> Mapping[str, Any]:
        return self._fn()


class MetricsRegistry:
    """Namespace of instruments and pull-collectors; see module docstring."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Tuple[str, Any]] = []

    # -- instrument factories (idempotent by name) ---------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            self._check_free(name)
            existing = self._counters[name] = Counter(name, help)
        return existing

    def gauge(self, name: str, help: str = "",
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        existing = self._gauges.get(name)
        if existing is None:
            self._check_free(name)
            existing = self._gauges[name] = Gauge(name, help, fn)
        return existing

    def histogram(self, name: str, help: str = "") -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            self._check_free(name)
            existing = self._histograms[name] = Histogram(name, help)
        return existing

    def _check_free(self, name: str) -> None:
        if name in self._counters or name in self._gauges \
                or name in self._histograms:
            raise ValueError(f"metric {name!r} already registered with a "
                             "different type")

    # -- collectors -----------------------------------------------------------

    def register(self, prefix: str, collector: Any) -> None:
        """Attach a collector (an object with ``as_dict()``) whose keys
        are exported under ``<prefix>.<key>`` at snapshot time."""
        if not hasattr(collector, "as_dict"):
            raise TypeError(f"collector for {prefix!r} lacks as_dict()")
        self._collectors.append((prefix, collector))

    def register_callback(self, prefix: str,
                          fn: Callable[[], Mapping[str, Any]]) -> None:
        self.register(prefix, CallbackCollector(fn))

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, MetricValue]:
        """Flat ``{dotted.name: value}`` view of every metric right now.

        Histograms export as nested dicts (count/sum/mean/max/buckets).
        Collector pulls happen here, so the snapshot is as fresh as the
        underlying structures.
        """
        out: Dict[str, MetricValue] = {}
        for prefix, collector in self._collectors:
            for key, value in collector.as_dict().items():
                out[f"{prefix}.{key}"] = value
        for name, counter in self._counters.items():
            out[name] = counter.get()
        for name, gauge in self._gauges.items():
            out[name] = gauge.get()
        for name, histogram in self._histograms.items():
            out[name] = histogram.as_dict()
        return out

    def as_dict(self) -> Dict[str, MetricValue]:
        """Alias of :meth:`snapshot` (uniform collector surface)."""
        return self.snapshot()

    def describe(self) -> Dict[str, str]:
        """``{name: help}`` for every registry-native instrument."""
        out: Dict[str, str] = {}
        for group in (self._counters, self._gauges, self._histograms):
            for name, metric in group.items():
                out[name] = metric.help
        return out

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms) + len(self._collectors))
