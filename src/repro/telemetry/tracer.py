"""Microthread lifecycle tracing: spans from promotion to outcome.

The paper's timeliness story (Figure 9) is fundamentally a *latency*
story — a prediction helps fully only if its ``Store_PCache`` lands
before the target branch is fetched.  The tracer makes that inspectable
per microthread instance:

* a :class:`RoutineRecord` per Path Cache promotion — whether the build
  succeeded, its latency, and the routine's shape;
* a :class:`ThreadSpan` per successful spawn — phase boundaries
  (spawn → dispatch → execute/completion → ``Store_PCache`` arrival),
  the terminal status (``completed`` / ``aborted`` / ``violated`` /
  ``in_flight``), cause attribution for aborts, and the consumed
  prediction's timeliness kind with its slack against the target fetch.

"Why was this prediction late?" then reads directly off the span: a long
queue phase means contexts were contended, a long execute phase means
the dependence chain or cache misses dominated, a small separation means
the spawn point was simply too close to the branch.

Spans are bounded (``max_spans``) with per-status aggregate counters
that see everything, so attaching the tracer to long runs is safe.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.microthread import Microthread
    from repro.core.path import PathEvent
    from repro.core.spawn import ActiveMicrothread

#: terminal span statuses
SPAN_STATUSES = ("completed", "aborted", "violated", "in_flight")

#: abort cause attribution
CAUSE_PATH_DEVIATION = "path_deviation"
CAUSE_MEMDEP_VIOLATION = "memdep_violation"

#: pre-allocation spawn rejection reasons (before any span exists)
REJECT_PATH_PREFIX = "path_prefix_mismatch"
REJECT_NO_CONTEXT = "no_free_context"

#: closed spans kept reachable for late outcome attribution
_CLOSED_KEEP = 64


@dataclass
class RoutineRecord:
    """One Path Cache promotion and its build outcome."""

    term_pc: int
    path_id: int
    promoted_idx: int             # trace index of the triggering retire
    promoted_cycle: int
    built: bool
    build_latency: int = 0        # cycles until the routine is available
    routine_size: int = 0
    longest_chain: int = 0
    separation: int = 0           # spawn point → terminating branch
    spawn_pc: int = -1
    fail_reason: str = ""         # builder busy / extraction failure

    def as_dict(self) -> Dict[str, Any]:
        return {
            "term_pc": self.term_pc,
            "path_id": self.path_id,
            "promoted_idx": self.promoted_idx,
            "promoted_cycle": self.promoted_cycle,
            "built": self.built,
            "build_latency": self.build_latency,
            "routine_size": self.routine_size,
            "longest_chain": self.longest_chain,
            "separation": self.separation,
            "spawn_pc": self.spawn_pc,
            "fail_reason": self.fail_reason,
        }


@dataclass
class ThreadSpan:
    """Lifecycle of one spawned microthread instance."""

    span_id: int
    term_pc: int
    path_id: int
    spawn_idx: int                # trace index of the spawn-point fetch
    target_seq: int               # trace index of the predicted branch
    spawn_cycle: int
    dispatch_cycle: int = -1      # spawn + dispatch latency
    completion_cycle: int = -1    # routine drained
    arrival_cycle: int = -1       # Store_PCache landed
    status: str = "in_flight"
    abort_cause: str = ""
    end_idx: int = -1             # trace index where the span closed
    end_cycle: int = -1
    outcome: str = ""             # early/late_*/useless once consumed
    outcome_correct: bool = False
    target_fetch_cycle: int = -1  # fetch cycle of the target branch
    suffix_progress: int = 0      # taken branches matched before an abort

    # -- phase latencies (the "why was it late?" decomposition) --------------

    @property
    def queue_cycles(self) -> int:
        """Spawn-point fetch to microthread dispatch."""
        if self.dispatch_cycle < 0:
            return 0
        return self.dispatch_cycle - self.spawn_cycle

    @property
    def execute_cycles(self) -> int:
        """Dispatch to ``Store_PCache`` completion (the dependence-chain
        walk through shared issue slots)."""
        if self.arrival_cycle < 0 or self.dispatch_cycle < 0:
            return 0
        return self.arrival_cycle - self.dispatch_cycle

    @property
    def lifetime_cycles(self) -> int:
        """Spawn to routine drain (context occupancy)."""
        if self.completion_cycle < 0:
            return 0
        return self.completion_cycle - self.spawn_cycle

    @property
    def slack_cycles(self) -> Optional[int]:
        """Arrival margin vs the target branch's fetch: positive = the
        prediction was early by that many cycles, negative = late."""
        if self.target_fetch_cycle < 0 or self.arrival_cycle < 0:
            return None
        return self.target_fetch_cycle - self.arrival_cycle

    @property
    def complete(self) -> bool:
        """A full promote→spawn→execute→Store_PCache span that ran to its
        target without being killed."""
        return self.status == "completed" and self.arrival_cycle >= 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "term_pc": self.term_pc,
            "path_id": self.path_id,
            "spawn_idx": self.spawn_idx,
            "target_seq": self.target_seq,
            "spawn_cycle": self.spawn_cycle,
            "dispatch_cycle": self.dispatch_cycle,
            "completion_cycle": self.completion_cycle,
            "arrival_cycle": self.arrival_cycle,
            "status": self.status,
            "abort_cause": self.abort_cause,
            "end_idx": self.end_idx,
            "end_cycle": self.end_cycle,
            "outcome": self.outcome,
            "outcome_correct": self.outcome_correct,
            "queue_cycles": self.queue_cycles,
            "execute_cycles": self.execute_cycles,
            "lifetime_cycles": self.lifetime_cycles,
            "slack_cycles": self.slack_cycles,
            "suffix_progress": self.suffix_progress,
        }

    def format(self) -> str:
        """One-line rendering for ``repro trace``."""
        phases = (f"queue={self.queue_cycles} exec={self.execute_cycles}"
                  if self.dispatch_cycle >= 0 else "never dispatched")
        slack = self.slack_cycles
        timing = f" slack={slack:+d}" if slack is not None else ""
        cause = f" cause={self.abort_cause}" if self.abort_cause else ""
        outcome = f" outcome={self.outcome}" if self.outcome else ""
        return (f"span#{self.span_id:<5} branch@{self.term_pc:<6} "
                f"spawn@{self.spawn_idx:<8} target@{self.target_seq:<8} "
                f"{self.status:<10} {phases}{timing}{outcome}{cause}")


@dataclass
class _TracerTallies:
    """Aggregate counts that see every event, stored or not."""

    promotions: int = 0
    builds: int = 0
    build_failures: int = 0
    demotions: int = 0
    spawns: int = 0
    statuses: TallyCounter = field(default_factory=TallyCounter)
    outcomes: TallyCounter = field(default_factory=TallyCounter)
    abort_causes: TallyCounter = field(default_factory=TallyCounter)
    spawn_rejections: TallyCounter = field(default_factory=TallyCounter)


class ThreadTracer:
    """Lifecycle span recorder; attach via a ``TelemetrySession``."""

    def __init__(self, max_spans: int = 10_000,
                 max_routines: int = 10_000,
                 term_pc: Optional[int] = None):
        if max_spans <= 0 or max_routines <= 0:
            raise ValueError("span/routine capacity must be positive")
        #: restrict tracing to one terminating branch PC when set
        self.term_pc = term_pc
        self.spans: Deque[ThreadSpan] = deque(maxlen=max_spans)
        self.routines: Deque[RoutineRecord] = deque(maxlen=max_routines)
        self.tallies = _TracerTallies()
        self._live: Dict[int, ThreadSpan] = {}   # id(instance) -> span
        # Recently closed spans, keyed like ``_live``.  An aborted
        # instance's prediction can still be consumed afterwards (its
        # ``Store_PCache`` may already have landed), so the terminal
        # outcome kind must be attributable after the span closed.  The
        # map retains the instance itself, which both prevents id reuse
        # while an entry is held and bounds its own lifetime via
        # ``_CLOSED_KEEP``.
        self._closed: Dict[int, Tuple["ActiveMicrothread", ThreadSpan]] = {}
        self._closed_order: Deque[int] = deque()
        self._next_span_id = 0

    def _traced(self, term_pc: int) -> bool:
        return self.term_pc is None or term_pc == self.term_pc

    # -- routine lifecycle (promote -> build) --------------------------------

    def on_promote(self, event: "PathEvent", cycle: int) -> None:
        self.tallies.promotions += 1

    def on_build(self, thread: "Microthread", event: "PathEvent",
                 cycle: int, build_latency: int) -> None:
        self.tallies.builds += 1
        if not self._traced(thread.term_pc):
            return
        self.routines.append(RoutineRecord(
            term_pc=thread.term_pc,
            path_id=thread.path_id,
            promoted_idx=event.branch_idx,
            promoted_cycle=cycle,
            built=True,
            build_latency=build_latency,
            routine_size=thread.routine_size,
            longest_chain=thread.longest_chain,
            separation=thread.separation,
            spawn_pc=thread.spawn_pc,
        ))

    def on_build_failed(self, event: "PathEvent", cycle: int,
                        reason: str) -> None:
        self.tallies.build_failures += 1
        if not self._traced(event.key.term_pc):
            return
        self.routines.append(RoutineRecord(
            term_pc=event.key.term_pc,
            path_id=event.path_id,
            promoted_idx=event.branch_idx,
            promoted_cycle=cycle,
            built=False,
            fail_reason=reason,
        ))

    def on_demote(self, term_pc: int) -> None:
        self.tallies.demotions += 1

    # -- instance lifecycle (spawn -> outcome) -------------------------------

    def on_spawn_rejected(self, thread: "Microthread", idx: int,
                          cycle: int, reason: str) -> None:
        """The spawn manager refused this invocation before allocation
        (path-prefix mismatch or microcontext exhaustion): no span ever
        opens, but the rejection is still attributed by cause."""
        self.tallies.spawn_rejections[reason] += 1

    def _close(self, instance: "ActiveMicrothread",
               span: ThreadSpan) -> None:
        key = id(instance)
        if key not in self._closed:
            self._closed_order.append(key)
        self._closed[key] = (instance, span)
        while len(self._closed_order) > _CLOSED_KEEP:
            self._closed.pop(self._closed_order.popleft(), None)

    def on_spawn(self, instance: "ActiveMicrothread") -> None:
        self.tallies.spawns += 1
        if not self._traced(instance.thread.term_pc):
            return
        span = ThreadSpan(
            span_id=self._next_span_id,
            term_pc=instance.thread.term_pc,
            path_id=instance.thread.path_id,
            spawn_idx=instance.spawn_idx,
            target_seq=instance.target_seq,
            spawn_cycle=instance.spawn_cycle,
        )
        self._next_span_id += 1
        self._live[id(instance)] = span
        self.spans.append(span)

    def on_execute(self, instance: "ActiveMicrothread",
                   dispatch_cycle: int) -> None:
        span = self._live.get(id(instance))
        if span is None:
            return
        span.dispatch_cycle = dispatch_cycle
        span.completion_cycle = instance.completion_cycle
        span.arrival_cycle = instance.arrival_cycle

    def on_abort(self, instance: "ActiveMicrothread", cause: str,
                 idx: int, cycle: int) -> None:
        span = self._live.pop(id(instance), None)
        status = ("violated" if cause == CAUSE_MEMDEP_VIOLATION
                  else "aborted")
        self.tallies.statuses[status] += 1
        self.tallies.abort_causes[cause] += 1
        if span is None:
            return
        span.status = status
        span.abort_cause = cause
        span.end_idx = idx
        span.end_cycle = cycle
        span.suffix_progress = instance.suffix_progress
        self._close(instance, span)

    def on_complete(self, instance: "ActiveMicrothread", idx: int,
                    cycle: int) -> None:
        """The instance's target retired without the span being killed."""
        span = self._live.pop(id(instance), None)
        self.tallies.statuses["completed"] += 1
        if span is None:
            return
        span.status = "completed"
        span.end_idx = idx
        span.end_cycle = cycle
        span.suffix_progress = instance.suffix_progress
        self._close(instance, span)

    def on_outcome(self, instance: "ActiveMicrothread", kind: str,
                   correct: bool, target_fetch_cycle: int) -> None:
        """The front-end consumed this instance's prediction."""
        self.tallies.outcomes[kind] += 1
        span = self._live.get(id(instance))
        if span is None:
            # The span may already be closed (aborted-then-consumed:
            # the Store_PCache landed before the abort, so the cached
            # prediction outlives the instance).  Attribute the
            # terminal outcome kind to the closed span.
            closed = self._closed.get(id(instance))
            if closed is None:
                return
            span = closed[1]
        span.outcome = kind
        span.outcome_correct = correct
        span.target_fetch_cycle = target_fetch_cycle

    def finish(self) -> None:
        """Close out spans still live at end of run."""
        for span in self._live.values():
            span.status = "in_flight"
            self.tallies.statuses["in_flight"] += 1
        self._live.clear()
        self._closed.clear()
        self._closed_order.clear()

    # -- queries / export ------------------------------------------------------

    def complete_spans(self) -> List[ThreadSpan]:
        return [span for span in self.spans if span.complete]

    def spans_for_branch(self, term_pc: int) -> List[ThreadSpan]:
        return [span for span in self.spans if span.term_pc == term_pc]

    def as_dict(self) -> Dict[str, Any]:
        """Aggregate tallies (the tracer's collector surface)."""
        tallies = self.tallies
        out: Dict[str, Any] = {
            "promotions": tallies.promotions,
            "builds": tallies.builds,
            "build_failures": tallies.build_failures,
            "demotions": tallies.demotions,
            "spawns": tallies.spawns,
            "spans_recorded": len(self.spans),
        }
        for status in SPAN_STATUSES:
            out[f"status_{status}"] = tallies.statuses.get(status, 0)
        for kind, count in sorted(tallies.outcomes.items()):
            out[f"outcome_{kind}"] = count
        for cause, count in sorted(tallies.abort_causes.items()):
            out[f"abort_{cause}"] = count
        for reason, count in sorted(tallies.spawn_rejections.items()):
            out[f"rejected_{reason}"] = count
        return out

    def span_rows(self) -> List[Dict[str, Any]]:
        return [span.as_dict() for span in self.spans]

    def routine_rows(self) -> List[Dict[str, Any]]:
        return [record.as_dict() for record in self.routines]

    def __len__(self) -> int:
        return len(self.spans)
