"""Command-line interface.

``python -m repro <command>`` exposes the main workflows:

* ``suite`` — list the synthetic benchmarks,
* ``run`` — baseline vs SSMT comparison on one benchmark; with
  ``--metrics-out`` it also writes a full machine-readable telemetry
  report (see ``docs/telemetry.md``),
* ``trace`` — microthread lifecycle spans (promote → build → spawn →
  execute → outcome) on one benchmark; ``--perfetto`` additionally
  writes the run's ``repro.obs/1`` Chrome trace-event timeline and
  ``--flight-out`` the misprediction flight recorder's
  ``repro.obs.flight/1`` post-mortem dumps (see
  ``docs/observability.md``),
* ``postmortem`` — render (and with ``--diff`` compare) flight-recorder
  artifacts: which H2P branches triggered, what the machine was doing
  in the cycles before each misprediction,
* ``profile`` — Table 1/2-style difficult-path profiling; with
  ``--perf`` it instead profiles the *simulator* under cProfile and
  reports (or writes, with ``--out``) a per-subsystem time breakdown
  (``repro.perf/1``; see ``docs/performance.md``),
* ``experiment`` — regenerate one of the paper's tables/figures; with
  ``--json-out DIR`` it also writes a ``BENCH_<which>.json`` artifact;
  ``--jobs N`` fans simulations across a process pool,
* ``sweep`` — run a (benchmark x width x config-knob) grid through the
  parallel sweep runner with on-disk result caching (``--jobs``,
  ``--cache-dir``, ``--no-resume``; see ``docs/telemetry.md``);
  ``--predictor`` swaps the hardware direction predictor for a zoo
  baseline (see ``docs/predictors.md``); ``--trace-out`` collects
  per-worker ``repro.obs/1`` trace shards and merges them, and
  ``--live`` streams heartbeat progress lines with stall surfacing,
* ``arena`` — the predictor arena: re-run the figure pipeline once per
  zoo baseline and emit the ``repro.arena/1``
  SSMT-headroom-vs-baseline-strength artifact with per-path H2P
  analytics (see ``docs/predictors.md``),
* ``disasm`` — disassemble a generated benchmark,
* ``verify`` — statically verify every built microthread (and, with
  ``--sanitize``, check runtime invariants); exits non-zero on errors
  so CI can gate on it,
* ``lint`` — AST-based determinism / hot-path / schema-governance
  analysis of the codebase itself, including the fingerprint drift gate
  (``--update-manifest`` refreshes it; see ``docs/lint.md``); exits
  non-zero on errors so CI can gate on it,
* ``serve`` — run the sweep service: an HTTP API over a journaled job
  queue that shards submitted grids across the sweep runner's worker
  pools, with fair scheduling across tenants and a shared
  content-addressed result store (see ``docs/service.md``),
* ``loadtest`` — replay a seeded request mix against a running service
  and write the ``repro.service.bench/1`` / ``BENCH_service.json``
  artifact (cold/warm hit rates, latency quantiles, byte-identity
  check; see ``docs/service.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from typing import Any, Dict, List, Optional

from repro.analysis import (
    characterize_paths,
    collect_control_events,
    coverage_analysis,
    format_table,
)
from repro.analysis.experiments import (
    baseline_run,
    figure6_potential,
    figure7_realistic,
    figure8_routines,
    figure9_timeliness,
    intro_perfect_prediction,
)
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.core.static import run_profile_guided
from repro.parallel import (
    SweepRunner,
    build_grid,
    merge_sweep,
    parse_knob_value,
)
from repro.telemetry import TelemetrySession, write_bench_json
from repro.verify import RULES, SimSanitizer, verify_suite
from repro.verify.runner import DEFAULT_VERIFY_LENGTH
from repro.workloads import BENCHMARK_NAMES, benchmark_trace, build_benchmark
from repro.workloads.suite import DEFAULT_TRACE_LENGTH


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--instructions", type=int,
                        default=DEFAULT_TRACE_LENGTH,
                        help="dynamic instructions to simulate")


def _add_kernel_args(parser: argparse.ArgumentParser) -> None:
    """The retire-loop kernel / sampled-simulation flags (repro.kernel)."""
    parser.add_argument("--kernel", choices=("scalar", "batched"),
                        default="scalar",
                        help="retire-loop implementation: the scalar "
                             "reference loop or the predecoded-column "
                             "batched kernel (bit-identical, faster; "
                             "see docs/performance.md)")
    parser.add_argument("--sample-interval", type=int, default=None,
                        metavar="N",
                        help="run sampled simulation with this period in "
                             "instructions (detailed warmup+measure "
                             "windows, functional fast-forward between; "
                             "results are extrapolations marked "
                             "'sampled')")
    parser.add_argument("--sample-warmup", type=int, default=2000,
                        metavar="N",
                        help="detailed warm-up instructions per sampling "
                             "period (with --sample-interval)")


def _sample_spec(args):
    """Build a SampleSpec from CLI args; None when sampling is off."""
    if args.sample_interval is None:
        return None
    from repro.kernel.sampling import SampleSpec

    try:
        return SampleSpec(interval=args.sample_interval,
                          warmup=args.sample_warmup)
    except ValueError as error:
        raise SystemExit(f"--sample-interval: {error}")


def _check_benchmark(name: str) -> str:
    if name not in BENCHMARK_NAMES:
        raise SystemExit(
            f"unknown benchmark {name!r}; run 'python -m repro suite'")
    return name


def cmd_suite(_args) -> int:
    rows = []
    for name in BENCHMARK_NAMES:
        program = build_benchmark(name)
        rows.append([name, len(program), program.static_branch_count()])
    print(format_table(["benchmark", "static insts", "static controls"],
                       rows, title="Synthetic suite"))
    return 0


def cmd_run(args) -> int:
    name = _check_benchmark(args.benchmark)
    trace = benchmark_trace(name, args.instructions)
    sample = _sample_spec(args)
    if args.profile_guided and (sample is not None
                                or args.kernel != "scalar"):
        raise SystemExit(
            "--kernel/--sample-interval select the dynamic engine's "
            "retire loop; they cannot be combined with --profile-guided")
    if sample is not None and (args.sanitize or args.metrics_out):
        raise SystemExit(
            "--sample-interval fast-forwards between detailed windows, "
            "which breaks the sanitizer/telemetry contract of observing "
            "every retired instruction; drop --sanitize/--metrics-out "
            "or run exact")
    if sample is not None:
        from repro.branch.unit import BranchPredictorComplex
        from repro.kernel.sampling import run_sampled

        base = run_sampled(trace, BranchPredictorComplex(), sample)
    elif args.kernel == "batched":
        from repro.branch.unit import BranchPredictorComplex
        from repro.kernel.batched import BatchedOoOTimingModel

        base = BatchedOoOTimingModel().run(trace, BranchPredictorComplex())
    else:
        base = baseline_run(trace)
    config = SSMTConfig(n=args.n, difficulty_threshold=args.threshold,
                        pruning=not args.no_pruning)
    sanitizer = None
    if args.sanitize:
        if args.profile_guided:
            raise SystemExit(
                "--sanitize checks the dynamic engine's structures; it "
                "cannot be combined with --profile-guided")
        sanitizer = SimSanitizer()
    telemetry = None
    if args.metrics_out:
        if args.profile_guided:
            raise SystemExit(
                "--metrics-out instruments the dynamic engine; it cannot "
                "be combined with --profile-guided")
        telemetry = TelemetrySession(sample_every=args.sample_every)
    if args.profile_guided:
        result, engine = run_profile_guided(trace, config)
        label = "profile-guided SSMT"
    else:
        result, engine = run_ssmt(trace, config, sanitizer=sanitizer,
                                  telemetry=telemetry,
                                  kernel=args.kernel, sample=sample)
        label = "dynamic SSMT"
    suffix = " [sampled]" if sample is not None else ""
    print(format_table(
        ["configuration", "IPC", "mispredicts", "speed-up"],
        [
            ["baseline", round(base.ipc, 3), base.effective_mispredicts, 1.0],
            [label, round(result.ipc, 3), result.effective_mispredicts,
             round(result.ipc / base.ipc, 3)],
        ],
        title=f"{name} ({args.instructions} instructions){suffix}"))
    if sample is not None and result.sample is not None:
        s = result.sample
        print(f"sampled: interval={s['interval']} warmup={s['warmup']} "
              f"measure={s['measure']} windows={s['windows']} "
              f"measured_fraction={s['measured_fraction']}")
    spawn = engine.spawner.stats
    print(f"\nroutines: {len(engine.microram)}  spawned: {spawn.spawned}  "
          f"aborted: {spawn.aborted_active}  "
          f"arrivals: {dict(engine.prediction_kind_counts)}")
    if telemetry is not None:
        report = telemetry.build_report(name, result, engine)
        report.write(args.metrics_out)
        completed = sum(1 for s in report.spans
                        if s["status"] == "completed")
        print(f"wrote {args.metrics_out} ({len(report.metrics)} metrics, "
              f"{len(report.samples)} samples, {len(report.spans)} spans, "
              f"{completed} completed)")
    if sanitizer is not None:
        report = sanitizer.final_check(engine)
        return _print_sanitizer_summary(report)
    return 0


def _print_sanitizer_summary(report) -> int:
    """Render the simsan outcome; non-zero exit when invariants broke."""
    by_rule = {}
    for diag in report.diagnostics:
        by_rule[diag.rule] = by_rule.get(diag.rule, 0) + 1
    rows = [[rule, count, RULES[rule].split(":")[0]]
            for rule, count in sorted(by_rule.items())]
    print()
    if not rows:
        print("sanitizer: all runtime invariants held")
        return 0
    print(format_table(["rule", "count", "invariant"], rows,
                       title="Sanitizer violations"))
    for diag in report.diagnostics[:20]:
        print("  " + diag.format())
    if len(report.diagnostics) > 20:
        print(f"  ... ({len(report.diagnostics) - 20} more)")
    return 1


def cmd_verify(args) -> int:
    if args.rules:
        rows = [[rule, text] for rule, text in sorted(RULES.items())]
        print(format_table(["rule", "description"], rows,
                           title="Verifier rules and sanitizer invariants"))
        return 0
    if args.benchmarks:
        benchmarks = tuple(_check_benchmark(b) for b in args.benchmarks)
    else:
        benchmarks = BENCHMARK_NAMES
    config = SSMTConfig(n=args.n, difficulty_threshold=args.threshold)
    results = verify_suite(benchmarks, instructions=args.instructions,
                           config=config, sanitize=args.sanitize)
    rows = []
    failing = []
    for r in results:
        status = "ok" if r.ok else "FAIL"
        rows.append([r.benchmark, r.routines_built, r.clean, r.error_count,
                     r.warning_count, r.sanitizer_errors, status])
        if not r.ok:
            failing.append(r)
    print(format_table(
        ["benchmark", "built", "clean", "errors", "warnings",
         "san errors", "status"],
        rows, title=f"Microthread verification ({args.instructions} "
                    f"instructions, n={args.n}, T={args.threshold})"))
    total_errors = sum(r.error_count + r.sanitizer_errors for r in results)
    total_built = sum(r.routines_built for r in results)
    print(f"\n{total_built} routines verified, {total_errors} errors")
    for r in failing:
        print(f"\n== {r.benchmark} ==")
        for report in r.error_reports[:args.max_reports]:
            print(report.format())
        if r.sanitizer_report is not None and r.sanitizer_report.errors:
            print(r.sanitizer_report.format())
    return 1 if failing else 0


def cmd_lint(args) -> int:
    """Static analysis of the repo itself (see docs/lint.md)."""
    from repro.lint import LINT_RULES, LintEngine

    if args.rules:
        rows = [[rule, text.split(":")[0], text.split(": ", 1)[1]]
                for rule, text in sorted(LINT_RULES.items())]
        print(format_table(["rule", "name", "description"], rows,
                           title="Lint rules"))
        return 0
    engine = LintEngine(args.root, baseline_path=args.baseline,
                        manifest_path=args.manifest,
                        rules=args.select or None)
    if args.update_manifest:
        count = engine.update_manifest()
        print(f"wrote {engine.manifest_path} ({count} modules)")
        return 0
    report = engine.run()
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return 0 if report.ok() else 1


def cmd_trace(args) -> int:
    """Microthread lifecycle tracing: every promotion/build outcome and
    every spawned instance's span, one line each."""
    import time

    name = _check_benchmark(args.benchmark)
    trace = benchmark_trace(name, args.instructions)
    flight = None
    obs_requested = bool(args.perfetto or args.flight_out)
    if obs_requested:
        # Deferred import: plain tracing never touches repro.obs
        # (tests/test_obs.py pins the untraced path down).
        from repro.obs import FlightRecorder, ObsSession
        from repro.obs.events import PH_COMPLETE
        # classification deliberately stays on the repro.analysis.h2p
        # defaults, NOT --threshold: the promotion knob must not move
        # the H2P yardstick, or an SSMT-off run (--threshold ~1) would
        # classify nothing as H2P and postmortem diffs would compare
        # different regimes instead of different machines
        flight = FlightRecorder(window=args.flight_window)
        telemetry: TelemetrySession = ObsSession(
            sample_every=0, max_spans=args.max_spans,
            term_pc=args.term_pc, flight=flight)
    else:
        telemetry = TelemetrySession(sample_every=0,
                                     max_spans=args.max_spans,
                                     term_pc=args.term_pc)
    config = SSMTConfig(n=args.n, difficulty_threshold=args.threshold)
    wall_start = time.monotonic()
    result, engine = run_ssmt(trace, config, telemetry=telemetry)
    if obs_requested:
        # One wall-domain span for the whole simulation, so the
        # artifact renders both clock domains as separate tracks.
        telemetry.recorder.wall(
            "task_run", ph=PH_COMPLETE, ts=0.0,
            dur=(time.monotonic() - wall_start) * 1e6,
            label=name, kind="ssmt")
    tracer = telemetry.tracer
    assert tracer is not None
    scope = (f" for branch@{args.term_pc}"
             if args.term_pc is not None else "")
    print(f"{name} ({args.instructions} instructions){scope}\n")
    print(f"== routines ({len(tracer.routines)}) ==")
    for record in tracer.routines:
        if record.built:
            detail = (f"built  size={record.routine_size} "
                      f"chain={record.longest_chain} "
                      f"sep={record.separation} "
                      f"latency={record.build_latency}")
        else:
            detail = f"build failed: {record.fail_reason}"
        print(f"promote@{record.promoted_idx:<8} "
              f"branch@{record.term_pc:<6} {detail}")
    spans = list(tracer.spans)
    shown = spans[-args.limit:] if args.limit else spans
    print(f"\n== spans ({len(spans)}"
          + (f", last {len(shown)}" if len(shown) < len(spans) else "")
          + ") ==")
    for span in shown:
        print(span.format())
    print("\n== summary ==")
    for key, value in tracer.as_dict().items():
        print(f"{key:>28}: {value}")
    if args.out:
        telemetry.build_report(name, result, engine).write(args.out)
        print(f"\nwrote {args.out}")
    if obs_requested:
        context = {"benchmark": name, "instructions": args.instructions,
                   "n": args.n, "threshold": args.threshold}
        if args.perfetto:
            payload = telemetry.write_trace(args.perfetto, context=context)
            print(f"\nwrote {args.perfetto} "
                  f"({len(payload['traceEvents'])} trace events; open at "
                  f"https://ui.perfetto.dev)")
        if args.flight_out:
            from repro.obs.flight import write_flight
            assert flight is not None
            write_flight(args.flight_out, flight, context=context)
            print(f"wrote {args.flight_out} "
                  f"({flight.h2p_mispredicts} H2P mispredicts, "
                  f"{len(flight.dumps)} dumps; "
                  f"render with 'repro postmortem')")
    return 0


def cmd_postmortem(args) -> int:
    """Render (and optionally diff) flight-recorder artifacts."""
    from repro.obs.flight import diff_flight, load_flight

    try:
        payload = load_flight(args.run)
    except (OSError, ValueError) as exc:
        print(f"cannot load flight artifact: {exc}", file=sys.stderr)
        return 1
    print(f"flight: {args.run}")
    thresholds = payload["thresholds"]
    print(f"h2p_mispredicts={payload['h2p_mispredicts']} "
          f"dumps={len(payload['dumps'])} "
          f"trigger_pcs={len(payload['triggers_by_pc'])} "
          f"window={payload['window']} "
          f"(difficult>{thresholds['difficult']}, "
          f"min_occurrences={thresholds['min_occurrences']})")
    for dump in payload["dumps"][:args.dumps]:
        rate = dump["mispredict_rate"]
        print(f"\ndump#{dump['dump_id']} branch@{dump['pc']} "
              f"idx={dump['idx']} cycle={dump['cycle']} "
              f"rate={rate:.2f} "
              f"({dump['mispredicts']}/{dump['occurrences']})")
        path = dump["path"]
        print(f"  path: {path}")
        for event in dump["events"][-args.events:]:
            rendered = " ".join(f"{k}={v}" for k, v
                                in sorted(event["args"].items()))
            print(f"  cycle {event['ts']:>8} {event['name']:<24} "
                  f"{rendered}")
        for inflight in dump["inflight"]:
            print(f"  in-flight branch@{inflight['term_pc']} "
                  f"spawned@{inflight['spawn_cycle']} "
                  f"arrival@{inflight['arrival_cycle']} "
                  f"slack={inflight['slack_vs_trigger']:+d} "
                  f"aborted={inflight['aborted']}")
    shown = min(args.dumps, len(payload["dumps"]))
    if shown < len(payload["dumps"]):
        print(f"\n... ({len(payload['dumps']) - shown} more dumps; "
              f"raise --dumps)")
    if args.diff:
        try:
            other = load_flight(args.diff)
        except (OSError, ValueError) as exc:
            print(f"cannot load diff artifact: {exc}", file=sys.stderr)
            return 1
        diff = diff_flight(payload, other)
        print(f"\n== diff vs {args.diff} ==")
        print(f"h2p mispredicts: {diff['reference_h2p_mispredicts']} -> "
              f"{diff['candidate_h2p_mispredicts']}")
        print(f"repaired pcs:   {diff['repaired_pcs']}")
        print(f"surviving pcs:  {diff['surviving_pcs']}")
        print(f"introduced pcs: {diff['introduced_pcs']}")
        changed = {name: mix for name, mix in diff["event_mix"].items()
                   if mix["reference"] != mix["candidate"]}
        for event_name, mix in sorted(changed.items()):
            print(f"  {event_name:<24} {mix['reference']:>6} -> "
                  f"{mix['candidate']}")
    return 0


def cmd_profile(args) -> int:
    name = _check_benchmark(args.benchmark)
    if args.perf:
        from repro.perf import ProfileHarness
        report = ProfileHarness(name, args.instructions,
                                telemetry=args.telemetry,
                                top=args.top).run()
        print(report.format_table())
        payload = report.payload
        print(f"\n{payload['instructions_per_second']:,.0f} simulated "
              f"instructions/sec ({payload['wall_seconds']:.3f}s wall)")
        if args.out:
            report.write(args.out)
            print(f"wrote {args.out}")
        return 0
    events = collect_control_events(benchmark_trace(name, args.instructions))
    rows = []
    for n in args.n:
        c = characterize_paths(events, n)
        rows.append([n, c.unique_paths, round(c.mean_scope, 1),
                     c.difficult_paths[0.05], c.difficult_paths[0.10],
                     c.difficult_paths[0.15]])
    print(format_table(
        ["n", "paths", "scope", "difficult@.05", "@.10", "@.15"],
        rows, title=f"{name}: path characterization (Table 1)"))
    results = coverage_analysis(events, ns=tuple(args.n),
                                thresholds=(args.threshold,))
    rows = [[r.scheme, round(100 * r.mispredict_coverage, 1),
             round(100 * r.execution_coverage, 1)] for r in results]
    print()
    print(format_table(["scheme", "mis%", "exe%"], rows,
                       title=f"{name}: coverage at T={args.threshold} (Table 2)"))
    return 0


def cmd_experiment(args) -> int:
    benchmarks = tuple(args.benchmarks) if args.benchmarks else BENCHMARK_NAMES
    for name in benchmarks:
        _check_benchmark(name)
    length = args.instructions
    runner_kwargs = {"jobs": args.jobs, "cache_dir": args.cache_dir}
    json_results: Dict[str, Any] = {}

    if args.which == "intro":
        speedups = intro_perfect_prediction(benchmarks, length,
                                            **runner_kwargs)
        rows = [[k, round(v, 3)] for k, v in speedups.items()]
        json_results = {k: {"speedup": v} for k, v in speedups.items()}
        print(format_table(["bench", "speed-up"], rows,
                           title="Perfect-prediction headroom (§1)"))
    elif args.which == "fig6":
        results = figure6_potential(benchmarks, trace_length=length,
                                    **runner_kwargs)
        rows = [[k] + [round(v[n], 3) for n in (4, 10, 16)]
                for k, v in results.items()]
        json_results = {k: {f"n{n}": v[n] for n in (4, 10, 16)}
                        for k, v in results.items()}
        print(format_table(["bench", "n=4", "n=10", "n=16"], rows,
                           title="Figure 6: potential speed-up"))
    elif args.which == "fig7":
        results = figure7_realistic(benchmarks, trace_length=length,
                                    **runner_kwargs)
        rows = [[r.benchmark, round(r.baseline_ipc, 2),
                 round(r.speedup_no_pruning, 3), round(r.speedup_pruning, 3),
                 round(r.speedup_overhead_only, 3)] for r in results]
        mean_gain = 100 * (statistics.mean(
            r.speedup_pruning for r in results) - 1)
        json_results = {r.benchmark: {
            "baseline_ipc": r.baseline_ipc,
            "speedup_no_pruning": r.speedup_no_pruning,
            "speedup_pruning": r.speedup_pruning,
            "speedup_overhead_only": r.speedup_overhead_only,
        } for r in results}
        json_results["_mean_gain_pct"] = round(mean_gain, 3)
        print(format_table(
            ["bench", "base IPC", "no-pruning", "pruning", "overhead"],
            rows, title="Figure 7: realistic speed-up"))
        print(f"\nmean gain with pruning: {mean_gain:.1f}% "
              f"(paper: 8.4%)")
        if args.chart:
            from repro.analysis.charts import grouped_bar_chart

            print()
            print(grouped_bar_chart(
                {r.benchmark: {"pruning": r.speedup_pruning,
                               "no-pruning": r.speedup_no_pruning,
                               "overhead": r.speedup_overhead_only}
                 for r in results},
                title="Figure 7 (bars)"))
    elif args.which == "fig8":
        realistic = figure7_realistic(benchmarks, trace_length=length,
                                      **runner_kwargs)
        routines = figure8_routines(realistic)
        rows = [[k, round(v["size_no_pruning"], 2),
                 round(v["size_pruning"], 2),
                 round(v["chain_no_pruning"], 2),
                 round(v["chain_pruning"], 2)]
                for k, v in routines.items()]
        json_results = {k: dict(v) for k, v in routines.items()}
        print(format_table(
            ["bench", "size np", "size p", "chain np", "chain p"],
            rows, title="Figure 8: routine size & dependence chain"))
    elif args.which == "fig9":
        realistic = figure7_realistic(benchmarks, trace_length=length,
                                      **runner_kwargs)
        timeliness = figure9_timeliness(realistic)
        rows = []
        for k, v in timeliness.items():
            p = v["pruning"]
            rows.append([k, round(100 * p["early"], 1),
                         round(100 * p["late"], 1),
                         round(100 * p["useless"], 1), p["total"]])
        json_results = {k: {mode: dict(stats)
                            for mode, stats in v.items()}
                        for k, v in timeliness.items()}
        print(format_table(["bench", "early%", "late%", "useless%", "total"],
                           rows, title="Figure 9: timeliness (pruning)"))
    else:  # table1 / table2 via profile over all benchmarks
        for name in benchmarks:
            events = collect_control_events(benchmark_trace(name, length))
            if args.which == "table1":
                rows = []
                per_n: Dict[str, Any] = {}
                for n in (4, 10, 16):
                    c = characterize_paths(events, n)
                    rows.append([n, c.unique_paths, round(c.mean_scope, 1),
                                 c.difficult_paths[0.10]])
                    per_n[f"n{n}"] = {
                        "unique_paths": c.unique_paths,
                        "mean_scope": round(c.mean_scope, 3),
                        "difficult_at_10": c.difficult_paths[0.10],
                    }
                json_results[name] = per_n
                print(format_table(["n", "paths", "scope", "difficult@.10"],
                                   rows, title=f"Table 1: {name}"))
            else:
                results = coverage_analysis(events, thresholds=(0.10,))
                rows = [[r.scheme, round(100 * r.mispredict_coverage, 1),
                         round(100 * r.execution_coverage, 1)]
                        for r in results]
                json_results[name] = {
                    r.scheme: {
                        "mispredict_coverage": round(
                            r.mispredict_coverage, 6),
                        "execution_coverage": round(
                            r.execution_coverage, 6),
                    } for r in results}
                print(format_table(["scheme", "mis%", "exe%"], rows,
                                   title=f"Table 2: {name}"))
            print()

    if args.json_out:
        os.makedirs(args.json_out, exist_ok=True)
        path = os.path.join(args.json_out, f"BENCH_{args.which}.json")
        write_bench_json(path, args.which, json_results, context={
            "instructions": length,
            "benchmarks": list(benchmarks),
        })
        print(f"wrote {path}")
    return 0


def cmd_sweep(args) -> int:
    """Run a configuration grid through the parallel sweep runner."""
    benchmarks = tuple(args.benchmarks) if args.benchmarks else BENCHMARK_NAMES
    for name in benchmarks:
        _check_benchmark(name)
    if args.values and not args.knob:
        raise SystemExit("--values requires --knob")
    values = tuple(parse_knob_value(args.knob, raw) for raw in args.values) \
        if args.knob else ()
    predictor = None
    if args.predictor:
        # Imported only when asked for: the default sweep never touches
        # the zoo (see tests/test_zoo_zero_cost.py).
        from repro.branch.zoo import ARENA_BASELINES
        if args.predictor not in ARENA_BASELINES:
            raise SystemExit(
                f"unknown predictor {args.predictor!r}; choose from "
                + ", ".join(sorted(ARENA_BASELINES)))
        predictor = ARENA_BASELINES[args.predictor]
    sample = _sample_spec(args)
    tasks = build_grid(benchmarks, args.instructions,
                       knob=args.knob, values=values,
                       widths=tuple(args.widths or ()),
                       predictor=predictor,
                       kernel=args.kernel, sample=sample)
    runner_kwargs: Dict[str, Any] = {}
    observer = None
    if args.trace_out or args.live:
        # Deferred import: an untraced sweep never touches repro.obs
        # (tests/test_obs.py pins the default path down).
        from repro.obs import SweepObs
        observer = SweepObs(live=args.live,
                            heartbeat_interval=args.heartbeat)
        runner_kwargs["observer"] = observer
    if args.trace_out:
        import functools

        from repro.parallel.worker import run_task_traced
        os.makedirs(args.trace_out, exist_ok=True)
        runner_kwargs["worker"] = functools.partial(
            run_task_traced, trace_dir=args.trace_out)
    runner = SweepRunner(jobs=args.jobs, cache_dir=args.cache_dir,
                         resume=args.resume, task_timeout=args.timeout,
                         max_retries=args.retries, **runner_kwargs)
    preexisting = len(runner.cache) if runner.cache is not None else 0
    outcome = runner.run(tasks)
    if (args.resume and preexisting > 0 and outcome.cache_hits == 0
            and outcome.cache_misses > 0):
        # Every stored entry missed: almost always a CODE_SCHEMA_VERSION
        # bump since the cache was written (task keys embed the version,
        # so foreign-version entries can never match).
        print("sweep: --resume found a populated cache but no entry "
              "matched this grid; entries written under a different "
              "CODE_SCHEMA_VERSION are invalidated by design (see "
              "docs/service.md, 'Cache invalidation')", file=sys.stderr)
    context_extra: Dict[str, Any] = {}
    if args.kernel != "scalar":
        context_extra["kernel"] = args.kernel
    if sample is not None:
        context_extra["sample"] = {"interval": sample.interval,
                                   "warmup": sample.warmup,
                                   "measure": sample.measure}
    merged = merge_sweep(outcome.results, context={
        "benchmarks": list(benchmarks),
        "instructions": args.instructions,
        "knob": args.knob,
        "values": list(values),
        "widths": list(args.widths or ()),
        "predictor": args.predictor or None,
        **context_extra,
        "jobs": outcome.jobs,
        "simulated": outcome.simulated,
        "cache_hits": outcome.cache_hits,
        "deduped": outcome.deduped,
        "retries": outcome.retries,
        "elapsed": round(outcome.elapsed, 3),
    }, errors=outcome.errors)

    rows = [[label, agg["mean_speedup"], agg["geomean_speedup"]]
            for label, agg in merged["aggregates"].items()]
    if rows:
        print(format_table(["config", "mean speed-up", "geomean"], rows,
                           title=f"Sweep over {len(benchmarks)} benchmarks "
                                 f"({args.instructions} instructions)"))
        print()
    print(outcome.summary_line())
    for key, reason in outcome.errors.items():
        print(f"  failed {key[:16]}: {reason}", file=sys.stderr)

    if args.trace_out:
        from repro.obs.sweepobs import load_shards, write_merged_trace
        shards = load_shards(args.trace_out)
        merged_path = os.path.join(args.trace_out,
                                   "sweep-merged.perfetto.json")
        write_merged_trace(merged_path, shards, context={
            "benchmarks": list(benchmarks),
            "instructions": args.instructions,
        })
        print(f"wrote {merged_path} ({len(shards)} shards; open at "
              f"https://ui.perfetto.dev)")
        if observer is not None:
            runner_path = os.path.join(args.trace_out,
                                       "sweep-runner.perfetto.json")
            observer.write_trace(runner_path,
                                 context={"jobs": outcome.jobs})
            print(f"wrote {runner_path}")

    if args.json_out:
        os.makedirs(os.path.dirname(args.json_out) or ".", exist_ok=True)
        with open(args.json_out, "w") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.bench_out:
        os.makedirs(args.bench_out, exist_ok=True)
        path = os.path.join(args.bench_out, "BENCH_sweep.json")
        write_bench_json(path, "sweep", merged["aggregates"],
                         context=merged["context"])
        print(f"wrote {path}")
    return 1 if outcome.failures else 0


def cmd_arena(args) -> int:
    """Run the predictor arena (see docs/predictors.md)."""
    from repro.analysis.arena import run_arena

    benchmarks = tuple(args.benchmarks) if args.benchmarks else BENCHMARK_NAMES
    for name in benchmarks:
        _check_benchmark(name)
    try:
        artifact = run_arena(benchmarks, args.instructions,
                             baselines=args.predictors or None,
                             jobs=args.jobs, cache_dir=args.cache_dir,
                             resume=args.resume,
                             kernel=args.kernel,
                             sample=_sample_spec(args))
    except ValueError as error:
        raise SystemExit(str(error))

    rows = [[label, row["mean_accuracy"], row["geomean_ssmt_speedup"],
             row["geomean_potential_speedup"],
             row["geomean_oracle_headroom"]]
            for label, row in artifact["headroom"].items()]
    print(format_table(
        ["baseline", "accuracy", "ssmt", "potential", "oracle headroom"],
        rows, title=f"Predictor arena over {len(benchmarks)} benchmarks "
                    f"({args.instructions} instructions)"))
    print()
    targets = artifact["calibration_targets"]
    rows = [[name, t["strongest_baseline"], t["target_accuracy"],
             t["surviving_h2p_paths"], t["target_h2p_fraction"]]
            for name, t in targets.items()]
    print(format_table(
        ["bench", "strongest", "accuracy", "surviving h2p", "h2p frac"],
        rows, title="Workload calibration targets"))
    context = artifact["context"]
    print(f"\narena: baselines={len(artifact['headroom'])} "
          f"benchmarks={len(benchmarks)} points={context['points']} "
          f"simulated={context['simulated']} "
          f"cache_hits={context['cache_hits']}")

    if args.json_out:
        os.makedirs(os.path.dirname(args.json_out) or ".", exist_ok=True)
        with open(args.json_out, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.bench_out:
        os.makedirs(args.bench_out, exist_ok=True)
        path = os.path.join(args.bench_out, "BENCH_arena.json")
        write_bench_json(path, "arena", artifact["headroom"],
                         context=context)
        print(f"wrote {path}")
    return 0


def cmd_disasm(args) -> int:
    name = _check_benchmark(args.benchmark)
    listing = build_benchmark(name).disassemble()
    lines = listing.splitlines()
    if args.head and len(lines) > args.head:
        lines = lines[:args.head] + [f"... ({len(lines) - args.head} more lines)"]
    print("\n".join(lines))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Difficult-path branch prediction using subordinate "
                    "microthreads (ISCA 2002) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("suite", help="list the synthetic benchmarks")

    run_parser = sub.add_parser("run", help="baseline vs SSMT on a benchmark")
    run_parser.add_argument("benchmark")
    _add_common(run_parser)
    run_parser.add_argument("--n", type=int, default=10)
    run_parser.add_argument("--threshold", type=float, default=0.10)
    run_parser.add_argument("--no-pruning", action="store_true")
    run_parser.add_argument("--profile-guided", action="store_true",
                            help="use the compile-time variant")
    run_parser.add_argument("--sanitize", action="store_true",
                            help="check runtime invariants (simsan); "
                                 "exits non-zero on violations")
    run_parser.add_argument("--metrics-out", metavar="PATH",
                            help="write the machine-readable telemetry "
                                 "report (JSON, or the interval-samples "
                                 "CSV when PATH ends in .csv)")
    run_parser.add_argument("--sample-every", type=int, default=2000,
                            help="interval sampler period in retired "
                                 "instructions (with --metrics-out; "
                                 "0 disables sampling)")
    _add_kernel_args(run_parser)

    trace_parser = sub.add_parser(
        "trace", help="microthread lifecycle spans on a benchmark")
    trace_parser.add_argument("benchmark")
    _add_common(trace_parser)
    trace_parser.add_argument("--n", type=int, default=10)
    trace_parser.add_argument("--threshold", type=float, default=0.10)
    trace_parser.add_argument("--term-pc", type=int, default=None,
                              help="restrict tracing to this terminating "
                                   "branch PC")
    trace_parser.add_argument("--max-spans", type=int, default=10_000)
    trace_parser.add_argument("--limit", type=int, default=50,
                              help="most recent spans to print (0 = all)")
    trace_parser.add_argument("--out", metavar="PATH",
                              help="also write the full report JSON here")
    trace_parser.add_argument("--perfetto", metavar="PATH",
                              help="write a repro.obs/1 Chrome trace "
                                   "(open at https://ui.perfetto.dev)")
    trace_parser.add_argument("--flight-out", metavar="PATH",
                              help="write the misprediction flight "
                                   "recorder artifact (repro.obs.flight/1)")
    trace_parser.add_argument("--flight-window", type=int, default=64,
                              help="ring size per flight-recorder dump")

    profile_parser = sub.add_parser("profile",
                                    help="difficult-path profiling")
    profile_parser.add_argument("benchmark")
    _add_common(profile_parser)
    profile_parser.add_argument("--n", type=int, nargs="+",
                                default=[4, 10, 16])
    profile_parser.add_argument("--threshold", type=float, default=0.10)
    profile_parser.add_argument("--perf", action="store_true",
                                help="profile the simulator itself under "
                                     "cProfile instead of the workload's "
                                     "difficult paths")
    profile_parser.add_argument("--out", metavar="PATH",
                                help="with --perf: write the repro.perf/1 "
                                     "JSON artifact here")
    profile_parser.add_argument("--top", type=int, default=20,
                                help="with --perf: top functions to keep "
                                     "in the artifact")
    profile_parser.add_argument("--telemetry", action="store_true",
                                help="with --perf: attach a telemetry "
                                     "session to measure instrumented-run "
                                     "overhead")

    experiment_parser = sub.add_parser(
        "experiment", help="regenerate a paper table/figure")
    experiment_parser.add_argument(
        "which", choices=["intro", "table1", "table2", "fig6", "fig7",
                          "fig8", "fig9"])
    _add_common(experiment_parser)
    experiment_parser.add_argument("--benchmarks", nargs="*",
                                   help="subset (default: all 20)")
    experiment_parser.add_argument("--chart", action="store_true",
                                   help="also draw text bar charts")
    experiment_parser.add_argument("--json-out", metavar="DIR",
                                   help="write a BENCH_<which>.json "
                                        "artifact into DIR")
    experiment_parser.add_argument("--jobs", type=int, default=None,
                                   help="process-pool workers for the "
                                        "simulation grid (default: "
                                        "$REPRO_JOBS or serial)")
    experiment_parser.add_argument("--cache-dir", metavar="DIR",
                                   help="on-disk result cache; repeated "
                                        "runs skip completed points")

    sweep_parser = sub.add_parser(
        "sweep", help="parallel configuration sweep with result caching")
    _add_common(sweep_parser)
    sweep_parser.add_argument("--benchmarks", nargs="*",
                              help="subset (default: all 20)")
    sweep_parser.add_argument("--knob", metavar="FIELD",
                              help="SSMTConfig field to sweep (e.g. n, "
                                   "training_interval, pruning)")
    sweep_parser.add_argument("--values", nargs="*", default=[],
                              metavar="V",
                              help="settings for --knob (parsed by the "
                                   "field's type)")
    sweep_parser.add_argument("--widths", nargs="*", type=int, default=[],
                              metavar="W",
                              help="machine widths (fetch/issue/retire); "
                                   "each gets its own baseline")
    sweep_parser.add_argument("--predictor", metavar="NAME",
                              help="zoo baseline direction predictor for "
                                   "every point, e.g. tage, perceptron, "
                                   "h2p-tage (default: the paper's "
                                   "hybrid; see docs/predictors.md)")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="process-pool workers (default: "
                                   "$REPRO_JOBS or serial)")
    sweep_parser.add_argument("--cache-dir", metavar="DIR",
                              help="on-disk result cache keyed by task "
                                   "key; re-runs skip completed points")
    sweep_parser.add_argument("--resume", default=True,
                              action=argparse.BooleanOptionalAction,
                              help="read cached results (--no-resume "
                                   "recomputes but still writes the "
                                   "cache); entries written under a "
                                   "different CODE_SCHEMA_VERSION never "
                                   "match and are recomputed")
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="stall timeout: cancel outstanding "
                                   "points when none completes in time")
    sweep_parser.add_argument("--retries", type=int, default=1,
                              help="pool rebuilds after worker crashes "
                                   "before degrading to serial")
    sweep_parser.add_argument("--json-out", metavar="PATH",
                              help="write the merged repro.sweep/1 "
                                   "artifact here")
    sweep_parser.add_argument("--bench-out", metavar="DIR",
                              help="write a BENCH_sweep.json trajectory "
                                   "artifact into DIR")
    sweep_parser.add_argument("--trace-out", metavar="DIR",
                              help="write per-task repro.obs/1 trace "
                                   "shards plus a merged Perfetto "
                                   "timeline into DIR")
    sweep_parser.add_argument("--live", action="store_true",
                              help="echo live progress lines (heartbeats, "
                                   "stalls, pool rebuilds)")
    sweep_parser.add_argument("--heartbeat", type=float, default=5.0,
                              metavar="SECONDS",
                              help="progress heartbeat interval for "
                                   "--live / --trace-out")
    _add_kernel_args(sweep_parser)

    postmortem_parser = sub.add_parser(
        "postmortem",
        help="inspect a misprediction flight-recorder artifact")
    postmortem_parser.add_argument("run",
                                   help="repro.obs.flight/1 JSON written "
                                        "by `repro trace --flight-out`")
    postmortem_parser.add_argument("--diff", metavar="PATH",
                                   help="second flight artifact to compare "
                                        "against (e.g. after a config "
                                        "change)")
    postmortem_parser.add_argument("--dumps", type=int, default=4,
                                   help="dumps to render (0 = all)")
    postmortem_parser.add_argument("--events", type=int, default=8,
                                   help="ring-tail events to show per dump")

    arena_parser = sub.add_parser(
        "arena",
        help="predictor arena: SSMT headroom vs. baseline strength "
             "across the zoo (see docs/predictors.md)")
    _add_common(arena_parser)
    arena_parser.add_argument("--benchmarks", nargs="*",
                              help="subset (default: all 20)")
    arena_parser.add_argument("--predictors", nargs="*", metavar="NAME",
                              help="zoo baselines to race (default: all "
                                   "registered arena baselines)")
    arena_parser.add_argument("--jobs", type=int, default=None,
                              help="process-pool workers (default: "
                                   "$REPRO_JOBS or serial)")
    arena_parser.add_argument("--cache-dir", metavar="DIR",
                              help="on-disk result cache; re-runs skip "
                                   "completed points")
    arena_parser.add_argument("--resume", default=True,
                              action=argparse.BooleanOptionalAction,
                              help="read cached results (--no-resume "
                                   "recomputes but still writes the "
                                   "cache); entries written under a "
                                   "different CODE_SCHEMA_VERSION never "
                                   "match and are recomputed")
    arena_parser.add_argument("--json-out", metavar="PATH",
                              help="write the repro.arena/1 artifact here")
    arena_parser.add_argument("--bench-out", metavar="DIR",
                              help="write a BENCH_arena.json trajectory "
                                   "artifact into DIR")
    _add_kernel_args(arena_parser)

    disasm_parser = sub.add_parser("disasm", help="disassemble a benchmark")
    disasm_parser.add_argument("benchmark")
    disasm_parser.add_argument("--head", type=int, default=80)

    verify_parser = sub.add_parser(
        "verify",
        help="statically verify every microthread built over the suite")
    verify_parser.add_argument("benchmarks", nargs="*",
                               help="subset (default: all 20)")
    verify_parser.add_argument("--instructions", type=int,
                               default=DEFAULT_VERIFY_LENGTH,
                               help="dynamic instructions per benchmark")
    verify_parser.add_argument("--n", type=int, default=10)
    verify_parser.add_argument("--threshold", type=float, default=0.10)
    verify_parser.add_argument("--sanitize", action="store_true",
                               help="also run the runtime invariant "
                                    "sanitizer (simsan)")
    verify_parser.add_argument("--max-reports", type=int, default=10,
                               help="failing routines to detail per "
                                    "benchmark")
    verify_parser.add_argument("--rules", action="store_true",
                               help="list every rule id and exit")

    lint_parser = sub.add_parser(
        "lint",
        help="AST-based determinism / hot-path / schema-governance "
             "analysis of the codebase (see docs/lint.md)")
    default_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    lint_parser.add_argument("--root", default=default_root,
                             metavar="DIR",
                             help="repo root to lint (default: the "
                                  "checkout this package lives in)")
    lint_parser.add_argument("--format", choices=["text", "json"],
                             default="text",
                             help="report format (json carries the "
                                  "repro.lint/1 schema)")
    lint_parser.add_argument("--select", nargs="*", metavar="RULE",
                             help="restrict to these rule ids")
    lint_parser.add_argument("--baseline", metavar="PATH",
                             help="suppression baseline (default: "
                                  "<root>/lint-baseline.json)")
    lint_parser.add_argument("--manifest", metavar="PATH",
                             help="fingerprint manifest (default: "
                                  "<root>/lint-fingerprints.json)")
    lint_parser.add_argument("--update-manifest", action="store_true",
                             help="refresh the fingerprint manifest "
                                  "instead of linting (the explicit "
                                  "schema-drift acknowledgement)")
    lint_parser.add_argument("--rules", action="store_true",
                             help="list every lint rule id and exit")

    report_parser = sub.add_parser(
        "report", help="generate the full markdown experiment report")
    _add_common(report_parser)
    report_parser.add_argument("--benchmarks", nargs="*")
    report_parser.add_argument("--output", default="-",
                               help="output file ('-' = stdout)")

    serve_parser = sub.add_parser(
        "serve",
        help="run the sweep service: HTTP API + journaled job queue "
             "over the parallel runner (see docs/service.md)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address")
    serve_parser.add_argument("--port", type=int, default=8752,
                              help="TCP port (0 picks a free one)")
    serve_parser.add_argument("--queue-dir", default=".repro-serve",
                              metavar="DIR",
                              help="job-queue state directory; holds the "
                                   "repro.serve.job/1 journal the server "
                                   "resumes from after a crash")
    serve_parser.add_argument("--store", metavar="SPEC", default=None,
                              help="result-store backend: a directory "
                                   "path (disk cache, shared with repro "
                                   "sweep --cache-dir) or 'mem://' "
                                   "(default: <queue-dir>/store)")
    serve_parser.add_argument("--jobs", type=int, default=None,
                              help="process-pool workers per shard "
                                   "(default: $REPRO_JOBS or serial)")
    serve_parser.add_argument("--shard-size", type=int, default=8,
                              metavar="N",
                              help="tasks per scheduler turn; smaller "
                                   "shards interleave tenants more "
                                   "fairly")
    serve_parser.add_argument("--heartbeat", type=float, default=2.0,
                              metavar="SECONDS",
                              help="event-stream heartbeat interval")
    serve_parser.add_argument("--rate", type=float, default=0.0,
                              metavar="PER_SECOND",
                              help="per-tenant submit rate limit "
                                   "(0 = unlimited; excess gets 429)")
    serve_parser.add_argument("--burst", type=int, default=10,
                              help="rate-limit burst size per tenant")
    serve_parser.add_argument("--max-instructions", type=int, default=None,
                              metavar="N",
                              help="reject grids whose per-point budget "
                                   "exceeds N (default: no cap)")
    serve_parser.add_argument("--resume", default=True,
                              action=argparse.BooleanOptionalAction,
                              help="serve stored results as cache hits "
                                   "(--no-resume recomputes but still "
                                   "writes); entries written under a "
                                   "different CODE_SCHEMA_VERSION never "
                                   "match and are recomputed")
    serve_parser.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-shard stall timeout (as repro "
                                   "sweep --timeout)")
    serve_parser.add_argument("--retries", type=int, default=1,
                              help="pool rebuilds after worker crashes "
                                   "before degrading to serial")

    loadtest_parser = sub.add_parser(
        "loadtest",
        help="replay a seeded request mix against a running sweep "
             "service and write BENCH_service.json")
    loadtest_parser.add_argument("--url", default="http://127.0.0.1:8752",
                                 help="base URL of the service")
    loadtest_parser.add_argument("--requests", type=int, default=12,
                                 help="submissions in the cold pass")
    loadtest_parser.add_argument("--overlap", type=float, default=0.5,
                                 help="fraction of requests repeating an "
                                      "earlier grid (job-dedup traffic)")
    loadtest_parser.add_argument("--concurrency", type=int, default=4,
                                 help="concurrent client threads")
    loadtest_parser.add_argument("--tenants", type=int, default=3,
                                 help="distinct X-Tenant values to rotate "
                                      "through")
    loadtest_parser.add_argument("--seed", type=int, default=1,
                                 help="mix-generation seed")
    loadtest_parser.add_argument("--instructions", type=int, default=3000,
                                 help="per-point budget of generated "
                                      "grids")
    loadtest_parser.add_argument("--out", metavar="PATH", default=None,
                                 help="write the repro.service.bench/1 "
                                      "artifact here (e.g. "
                                      "BENCH_service.json)")

    return parser


def cmd_report(args) -> int:
    from repro.analysis.summary import generate_report

    benchmarks = tuple(args.benchmarks) if args.benchmarks else None
    if benchmarks:
        for name in benchmarks:
            _check_benchmark(name)
    report = generate_report(benchmarks, trace_length=args.instructions)
    if args.output == "-":
        print(report)
    else:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    return 0


def cmd_serve(args) -> int:
    """Run the sweep service HTTP server (see docs/service.md)."""
    # Deferred import: only `repro serve` / `repro loadtest` ever load
    # repro.serve (tests/test_serve_zero_cost pins the default path).
    from repro.serve import ServiceConfig, SweepService, make_store
    from repro.serve.http import run_server

    store_spec = args.store or os.path.join(args.queue_dir, "store")
    store = make_store(store_spec)
    config = ServiceConfig(jobs=args.jobs, shard_size=args.shard_size,
                           heartbeat=args.heartbeat, rate=args.rate,
                           burst=args.burst,
                           max_instructions=args.max_instructions,
                           resume=args.resume, task_timeout=args.timeout,
                           max_retries=args.retries)
    service = SweepService(args.queue_dir, store, config)
    if service.queue.recovered_tasks:
        print(f"repro serve: recovered "
              f"{service.queue.recovered_tasks} interrupted task(s) "
              f"from the journal; resuming", flush=True)
    run_server(service, args.host, args.port)
    return 0


def cmd_loadtest(args) -> int:
    """Replay a request mix against a running sweep service."""
    from repro.serve.loadtest import run_loadtest, summary_line

    report = run_loadtest(args.url, requests_n=args.requests,
                          overlap=args.overlap,
                          concurrency=args.concurrency,
                          tenants=args.tenants, seed=args.seed,
                          instructions=args.instructions, out=args.out)
    print(summary_line(report))
    if args.out:
        print(f"wrote {args.out}")
    failed = report["cold"]["failed_jobs"] + report["warm"]["failed_jobs"]
    if not report["identity"]["byte_identical"]:
        print("loadtest: served result diverged from the local sweep "
              "pipeline", file=sys.stderr)
        return 1
    return 1 if failed else 0


_COMMANDS = {
    "suite": cmd_suite,
    "run": cmd_run,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "experiment": cmd_experiment,
    "sweep": cmd_sweep,
    "postmortem": cmd_postmortem,
    "arena": cmd_arena,
    "disasm": cmd_disasm,
    "report": cmd_report,
    "verify": cmd_verify,
    "lint": cmd_lint,
    "serve": cmd_serve,
    "loadtest": cmd_loadtest,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
