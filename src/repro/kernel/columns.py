"""Struct-of-arrays predecode of a retirement trace.

The scalar timing loop reads ~10 attributes per dynamic instruction
(``rec.inst`` then its classification flags, dataflow sets, the record's
values).  :func:`predecode` walks the trace once and flattens everything
the hot loop needs into parallel columns — one flags bitmask plus flat
integer columns with ``-1`` sentinels for "none" — so the batched kernel
(:mod:`repro.kernel.batched`) does indexed list reads instead of
attribute walks.

Backends
--------
Columns can be held in three storages, selected by the ``backend``
argument or the ``REPRO_KERNEL_BACKEND`` environment variable:

* ``numpy`` — ``numpy.ndarray`` columns (the default when numpy is
  importable); enables vectorized summaries and compact storage,
* ``array`` — stdlib ``array('q')`` columns; compact, no dependency,
* ``python`` — plain lists (the pure-Python fallback, always available).

``auto`` (the default) picks ``numpy`` when available, else ``array``.
Whatever the storage, :meth:`TraceColumns.lists` hands the simulation
loop plain Python lists — CPython indexes lists faster than it unboxes
numpy scalars, so typed storage is for footprint and vector analytics
while the loop always runs over lists.  Values that overflow a signed
64-bit column degrade that one column to a plain list rather than
failing.

Predecode output is memoized on the trace object, so repeated runs over
the same trace (sweep points, benchmark rounds) pay the predecode walk
once.
"""

from __future__ import annotations

import os
from array import array
from typing import List, Optional, Tuple

from repro.sim.trace import Trace

# -- per-instruction classification bitmask ---------------------------------

IS_CONTROL = 1 << 0
IS_COND = 1 << 1          # conditional branch
IS_INDIRECT = 1 << 2
IS_TERM = 1 << 3          # path-terminating (conditional or indirect)
IS_LOAD = 1 << 4
IS_STORE = 1 << 5
IS_TAKEN = 1 << 6         # control transfer that redirected the PC
HAS_DEST = 1 << 7         # writes an architectural register
HAS_EA = 1 << 8           # carries an effective address

#: recognised storage backends, strongest-preference first
BACKENDS = ("numpy", "array", "python")

#: column order of :meth:`TraceColumns.lists`
COLUMN_NAMES = ("flags", "pc", "op", "dest", "src1", "src2", "nsrc",
                "imm", "ea", "result", "next_pc")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend name (or ``None``/``auto``) to a concrete one.

    ``None`` defers to ``REPRO_KERNEL_BACKEND`` (itself defaulting to
    ``auto``); ``auto`` prefers numpy and falls back to ``array``.
    """
    if backend is None:
        backend = os.environ.get("REPRO_KERNEL_BACKEND", "auto")
    if backend == "auto":
        try:
            import numpy  # noqa: F401  (availability probe)
        except ImportError:
            return "array"
        return "numpy"
    if backend not in BACKENDS:
        raise ValueError(f"unknown kernel backend {backend!r}; expected "
                         f"one of {BACKENDS + ('auto',)}")
    return backend


def _pack(values: List[int], backend: str):
    """Store one integer column in the backend's container.

    Falls back to the plain list when a value does not fit a signed
    64-bit cell (synthetic traces stay well inside, but the predecode
    contract is total).
    """
    if backend == "numpy":
        import numpy

        try:
            return numpy.array(values, dtype=numpy.int64)
        except OverflowError:
            return values
    if backend == "array":
        try:
            return array("q", values)
        except OverflowError:
            return values
    return values


def _as_list(column) -> List[int]:
    """A plain Python list view of a packed column."""
    if isinstance(column, list):
        return column
    if hasattr(column, "tolist"):
        return column.tolist()
    return list(column)


class TraceColumns:
    """Predecoded struct-of-arrays view of one :class:`Trace`.

    ``dest``/``src1``/``src2`` use ``-1`` for "none"; ``ea`` is ``0``
    with the ``HAS_EA`` flag clear when the record carries no effective
    address.  ``records`` keeps the original
    :class:`~repro.sim.trace.DynamicInstruction` objects for the rare
    paths (branch resolution, PRB entries, spawn checks) that still need
    them.
    """

    __slots__ = ("n", "backend", "records", "flags", "pc", "op", "dest",
                 "src1", "src2", "nsrc", "imm", "ea", "result", "next_pc",
                 "_lists")

    def __init__(self, trace: Trace, backend: Optional[str] = None):
        self.backend = resolve_backend(backend)
        records = trace.records
        self.records = records
        self.n = len(records)
        n = self.n
        flags = [0] * n
        pc = [0] * n
        op = [0] * n
        dest = [-1] * n
        src1 = [-1] * n
        src2 = [-1] * n
        nsrc = [0] * n
        imm = [0] * n
        ea = [0] * n
        result = [0] * n
        next_pc = [0] * n
        for i, rec in enumerate(records):
            inst = rec.inst
            f = 0
            if inst.is_control:
                f |= IS_CONTROL
                if rec.taken:
                    f |= IS_TAKEN
            if inst.is_conditional_branch:
                f |= IS_COND
            if inst.is_indirect:
                f |= IS_INDIRECT
            if inst.is_path_terminating:
                f |= IS_TERM
            if inst.is_load:
                f |= IS_LOAD
            if inst.is_store:
                f |= IS_STORE
            d = inst.dest
            if d is not None:
                f |= HAS_DEST
                dest[i] = d
            srcs = inst.srcs
            k = len(srcs)
            nsrc[i] = k
            if k:
                src1[i] = srcs[0]
                if k > 1:
                    src2[i] = srcs[1]
            if rec.ea is not None:
                f |= HAS_EA
                ea[i] = rec.ea
            flags[i] = f
            pc[i] = rec.pc
            op[i] = int(inst.opcode)
            imm[i] = inst.imm
            result[i] = rec.result
            next_pc[i] = rec.next_pc
        pack = self.backend
        self.flags = _pack(flags, pack)
        self.pc = _pack(pc, pack)
        self.op = _pack(op, pack)
        self.dest = _pack(dest, pack)
        self.src1 = _pack(src1, pack)
        self.src2 = _pack(src2, pack)
        self.nsrc = _pack(nsrc, pack)
        self.imm = _pack(imm, pack)
        self.ea = _pack(ea, pack)
        self.result = _pack(result, pack)
        self.next_pc = _pack(next_pc, pack)
        self._lists: Optional[Tuple[List[int], ...]] = None

    def lists(self) -> Tuple[List[int], ...]:
        """Plain-list views of every column, in :data:`COLUMN_NAMES`
        order (cached — the simulation loop's working set)."""
        lists = self._lists
        if lists is None:
            lists = tuple(_as_list(getattr(self, name))
                          for name in COLUMN_NAMES)
            self._lists = lists
        return lists

    # -- vectorized summaries (predecode sanity + sampling planning) --------

    def _count(self, mask: int) -> int:
        flags = self.flags
        if self.backend == "numpy" and not isinstance(flags, list):
            import numpy

            return int(numpy.count_nonzero(
                numpy.bitwise_and(flags, mask)))
        return sum(1 for f in flags if f & mask)

    def control_count(self) -> int:
        return self._count(IS_CONTROL)

    def conditional_count(self) -> int:
        return self._count(IS_COND)

    def terminating_count(self) -> int:
        return self._count(IS_TERM)

    def load_count(self) -> int:
        return self._count(IS_LOAD)

    def store_count(self) -> int:
        return self._count(IS_STORE)


def predecode(trace: Trace, backend: Optional[str] = None) -> TraceColumns:
    """Predecode ``trace`` (memoized on the trace object per backend)."""
    resolved = resolve_backend(backend)
    cached = getattr(trace, "_kernel_columns", None)
    if cached is not None and cached.backend == resolved:
        return cached
    columns = TraceColumns(trace, resolved)
    trace._kernel_columns = columns
    return columns
