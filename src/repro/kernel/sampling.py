"""Sampled simulation: detailed windows + functional fast-forward.

SMARTS/SimPoint-style systematic sampling over the batched kernel: the
trace is divided into periods of ``interval`` instructions; each period
runs ``warmup`` instructions in full detail (training predictors,
warming caches and the SSMT structures, excluded from measurement),
then ``measure`` instructions in full detail whose cycle and event
deltas are recorded, and fast-forwards the remainder *functionally* —
the hardware direction predictor still trains on every branch, cache
tags still turn over on every load/store, the engine's architectural
register/memory view and Path_History keep advancing — but no cycles
are modelled and no SSMT training/spawning happens.

The measured deltas are extrapolated to the full trace length into an
ordinary :class:`~repro.uarch.timing.TimingResult` whose ``sample``
attribute records the sampling parameters and coverage (the attribute
is *not* part of ``as_dict()``, so exact-mode payload layouts are
untouched; the sweep worker marks sampled payloads explicitly).

When sampling is sound
----------------------
Extrapolation assumes the measured windows are representative — true
for the suite's stationary synthetic workloads once per-period warm-up
covers predictor/cache cold-start (the default 2000-instruction warmup
does).  Phase-changing workloads need intervals short enough to sample
every phase.  Mechanism state that *matures* over a run (Path Cache
difficulty training, MicroRAM contents) only advances during detailed
windows, so SSMT-mode sampling sees a mechanism trained on roughly the
detailed fraction of the trace; mispredict-rate error bounds observed
on the suite are documented in ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTEngine
from repro.kernel.batched import BatchedOoOTimingModel, _RunState
from repro.kernel.columns import (
    HAS_DEST,
    HAS_EA,
    IS_CONTROL,
    IS_LOAD,
    IS_STORE,
    IS_TAKEN,
    predecode,
)
from repro.sim.trace import Trace
from repro.uarch.config import MachineConfig, TABLE3_BASELINE
from repro.uarch.timing import TimingResult


@dataclass(frozen=True)
class SampleSpec:
    """Sampling parameters.

    ``interval`` is the period length in instructions; each period runs
    ``warmup`` detailed warm-up instructions (unmeasured) followed by
    ``measure`` measured instructions (``0`` resolves to
    ``max(1, interval // 10)``), and fast-forwards the rest.
    """

    interval: int
    warmup: int = 2000
    measure: int = 0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("sample interval must be positive")
        if self.warmup < 0 or self.measure < 0:
            raise ValueError("warmup/measure must be non-negative")
        if self.measure == 0:
            object.__setattr__(self, "measure",
                               max(1, self.interval // 10))
        if self.warmup + self.measure > self.interval:
            raise ValueError(
                f"warmup ({self.warmup}) + measure ({self.measure}) must "
                f"fit in the interval ({self.interval})")


_KIND_NAMES = ("early", "late_agree", "late_useful", "late_harmful",
               "useless")


def _counter_snapshot(result: TimingResult) -> Dict[str, int]:
    kinds = result.prediction_kinds
    snap = {
        "hw_mispredicts": result.hw_mispredicts,
        "effective_mispredicts": result.effective_mispredicts,
        "early_recoveries": result.early_recoveries,
        "btb_bubbles": result.btb_bubbles,
        "conditional_branches": result.conditional_branches,
        "indirect_branches": result.indirect_branches,
    }
    for kind in _KIND_NAMES:
        snap["kind:" + kind] = kinds.get(kind, 0)
    return snap


def run_sampled(trace: Trace, predictor: BranchPredictorComplex,
                spec: SampleSpec,
                machine: MachineConfig = TABLE3_BASELINE,
                engine: Optional[SSMTEngine] = None) -> TimingResult:
    """Run ``trace`` sampled; returns an extrapolated ``TimingResult``.

    ``engine=None`` samples the plain baseline machine; passing an
    :class:`SSMTEngine` samples the full mechanism (detailed windows
    drive it exactly like an exact run).
    """
    model = BatchedOoOTimingModel(machine)
    columns = predecode(trace)
    n = columns.n
    result = TimingResult(name=trace.name, cache=model.caches.stats)
    model.result = result
    model.predictor = predictor
    state = _RunState(model.config.window_size, result)
    if engine is not None:
        engine.on_run_start(model, trace)

    measured_instructions = 0
    measured_cycles = 0
    accumulated: Dict[str, int] = {}
    windows = 0
    pos = 0
    while pos < n:
        measure_start = min(pos + spec.warmup, n)
        measure_end = min(measure_start + spec.measure, n)
        period_end = min(pos + spec.interval, n)
        if measure_start > pos:  # detailed warm-up (unmeasured)
            model.run_span(columns, predictor, engine, state,
                           pos, measure_start)
        if measure_end > measure_start:
            before = _counter_snapshot(result)
            cycles_before = state.last_retire
            model.run_span(columns, predictor, engine, state,
                           measure_start, measure_end)
            after = _counter_snapshot(result)
            measured_instructions += measure_end - measure_start
            measured_cycles += state.last_retire - cycles_before
            for key, value in after.items():
                accumulated[key] = (accumulated.get(key, 0)
                                    + value - before[key])
            windows += 1
        if period_end > measure_end:
            _fast_forward(model, columns, predictor, engine, state,
                          measure_end, period_end)
        pos = period_end

    if measured_instructions in (0, n):
        # Degenerate spec (warmup covers everything, or nothing was
        # skipped): the run was effectively exact.
        result.instructions = n
        result.cycles = state.last_retire + 1
        scale = 1.0
    else:
        scale = n / measured_instructions
        result.instructions = n
        result.cycles = max(1, round(measured_cycles * scale))
        result.hw_mispredicts = round(
            accumulated["hw_mispredicts"] * scale)
        result.effective_mispredicts = round(
            accumulated["effective_mispredicts"] * scale)
        result.early_recoveries = round(
            accumulated["early_recoveries"] * scale)
        result.btb_bubbles = round(accumulated["btb_bubbles"] * scale)
        result.conditional_branches = round(
            accumulated["conditional_branches"] * scale)
        result.indirect_branches = round(
            accumulated["indirect_branches"] * scale)
        result.prediction_kinds = {
            kind: round(accumulated["kind:" + kind] * scale)
            for kind in _KIND_NAMES
            if accumulated.get("kind:" + kind, 0)
        }
    result.sample = {
        "interval": spec.interval,
        "warmup": spec.warmup,
        "measure": spec.measure,
        "windows": windows,
        "measured_instructions": measured_instructions,
        "measured_fraction": round(measured_instructions / n, 6) if n else 0.0,
        "scale": round(scale, 6),
    }
    if engine is not None:
        engine.on_run_end(result, model)
    return result


def _fast_forward(model: BatchedOoOTimingModel, columns, predictor,
                  engine: Optional[SSMTEngine], state: _RunState,
                  lo: int, hi: int) -> None:
    """Functionally execute ``[lo, hi)`` without timing.

    Warms exactly the state the next detailed window depends on: the
    hardware direction predictor (trained on every branch), the cache
    hierarchy's tag state, and — with an engine attached — the
    architectural register/memory view and the Path_History window.
    SSMT training, spawning and the PRB are deliberately *not* advanced
    (no cycles exist to time them against); the per-period warm-up
    re-establishes their short-horizon state.
    """
    if hi <= lo:
        return
    (flags, pcs, ops, dests, src1s, src2s, nsrcs, imms, eas,
     results_col, next_pcs) = columns.lists()
    records = columns.records
    caches = model.caches
    load_latency = caches.load_latency
    cache_store = caches.store
    predictor_process = predictor.process
    when = state.last_retire
    if engine is not None:
        tracker_append = engine.tracker._append
        reg_values = engine.reg_values
        memory = engine.memory
    for idx in range(lo, hi):
        f = flags[idx]
        if f & IS_CONTROL:
            predictor_process(records[idx])
            if engine is not None and f & IS_TAKEN:
                tracker_append(pcs[idx], idx)
        elif f & IS_LOAD:
            load_latency(eas[idx], when)
        elif f & IS_STORE:
            cache_store(eas[idx])
        if engine is not None:
            if f & HAS_DEST:
                reg_values[dests[idx]] = results_col[idx]
            if f & IS_STORE and f & HAS_EA:
                memory[eas[idx]] = results_col[idx]
    last = flags[hi - 1]
    state.prev_was_taken = bool(last & IS_CONTROL and last & IS_TAKEN)
