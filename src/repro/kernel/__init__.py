"""Batched retire-loop kernel and sampled simulation.

``repro.kernel`` is the structural speed layer over the scalar
simulator (ROADMAP item 2):

* :func:`~repro.kernel.columns.predecode` /
  :class:`~repro.kernel.columns.TraceColumns` — struct-of-arrays
  predecode of a trace (numpy / stdlib ``array`` / pure-Python
  backends),
* :class:`~repro.kernel.batched.BatchedOoOTimingModel` — the fused
  column-batched timing + SSMT retire loop, bit-identical to the scalar
  path,
* :class:`~repro.kernel.sampling.SampleSpec` /
  :func:`~repro.kernel.sampling.run_sampled` — detailed-window sampling
  with functional fast-forward and extrapolated results.

Nothing on the default simulation path imports this package; callers
opt in via ``--kernel batched`` / ``--sample-interval`` (or the
``kernel``/``sample`` arguments of :func:`repro.core.ssmt.run_ssmt` and
:class:`repro.parallel.SweepTask`).
"""

from repro.kernel.batched import BatchedOoOTimingModel
from repro.kernel.columns import (
    BACKENDS,
    TraceColumns,
    predecode,
    resolve_backend,
)
from repro.kernel.sampling import SampleSpec, run_sampled

#: retire-loop kernel implementations selectable by CLI/tasks
KERNEL_NAMES = ("scalar", "batched")

__all__ = [
    "BACKENDS",
    "BatchedOoOTimingModel",
    "KERNEL_NAMES",
    "SampleSpec",
    "TraceColumns",
    "predecode",
    "resolve_backend",
    "run_sampled",
]
