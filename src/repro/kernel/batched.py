"""The batched retire-loop kernel.

:class:`BatchedOoOTimingModel` is a drop-in
:class:`~repro.uarch.timing.OoOTimingModel` whose main loop consumes the
predecoded columns of :mod:`repro.kernel.columns` instead of walking
``rec.inst`` attributes, and which fuses the
:class:`~repro.core.ssmt.SSMTEngine` retire work (predictor training,
PRB insertion, path tracking, spawn checks) directly into the loop —
eliminating the per-instruction listener dispatch that dominates the
scalar path's profile.

Bit-identity contract
---------------------
The fused loop performs *exactly* the scalar sequence of operations per
instruction, in the same order, against the same engine structures; the
rare conditional blocks (store violations, Path_History aborts, path
events) dispatch into the engine's shared ``_retire_*`` helpers, which
are also what ``SSMTEngine.on_retire`` runs.  ``tests/test_kernel.py``
pins the contract down with randomized property tests and task-key
payload identity on the gcc/50k reference.

The fusion only understands the stock engine surface.  Any other
listener — or an engine subclass that grew an ``on_timed`` hook — falls
back to the inherited scalar loop, so correctness never depends on the
fast path recognising a caller.

Hook costs when unused stay zero: telemetry/sanitizer dispatch sits
behind the engine's precomputed ``_quiet`` flag exactly like the scalar
path, and a quiet run performs no hook calls at all.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.unit import BranchPredictorComplex
from repro.core.prb import PRBEntry
from repro.core.ssmt import SSMTEngine
from repro.valuepred.stride import StrideEntry
from repro.kernel.columns import (
    HAS_DEST,
    HAS_EA,
    IS_COND,
    IS_CONTROL,
    IS_INDIRECT,
    IS_LOAD,
    IS_STORE,
    IS_TAKEN,
    IS_TERM,
    TraceColumns,
    predecode,
)
from repro.sim.trace import Trace
from repro.uarch.timing import OoOTimingModel, TimingResult

_M64 = (1 << 64) - 1
_OP_LD = 40   # Opcode.LD
_OP_ST = 41   # Opcode.ST
_OP_MUL = 11  # Opcode.MUL


class _RunState:
    """Mutable fetch/retire cursor state of one (possibly windowed) run.

    The fused loop loads these into locals on entry and stores them back
    on exit, which is what lets sampled simulation
    (:mod:`repro.kernel.sampling`) alternate detailed spans and
    fast-forward gaps over one persistent state.
    """

    __slots__ = ("fetch_cycle", "fetched_this_cycle", "taken_this_cycle",
                 "uops_this_cycle", "fetch_barrier", "retire_ring",
                 "last_retire", "retired_in_cycle", "last_store_complete",
                 "prev_was_taken", "result")

    def __init__(self, window: int, result: TimingResult):
        self.fetch_cycle = 0
        self.fetched_this_cycle = 0
        self.taken_this_cycle = 0
        self.uops_this_cycle = 0
        self.fetch_barrier = 0
        self.retire_ring: List[int] = [0] * window
        self.last_retire = 0
        self.retired_in_cycle = 0
        self.last_store_complete = {}
        self.prev_was_taken = False
        self.result = result


class BatchedOoOTimingModel(OoOTimingModel):
    """Column-batched timing model; see module docstring."""

    #: kernel name, for run metadata and dispatch assertions
    kernel = "batched"

    def run(self, trace: Trace, predictor: BranchPredictorComplex,
            listener=None) -> TimingResult:
        if listener is not None and (
                not isinstance(listener, SSMTEngine)
                or getattr(listener, "on_timed", None) is not None):
            # Unknown listener surface: correctness over speed.
            return super().run(trace, predictor, listener)
        columns = predecode(trace)
        result = TimingResult(name=trace.name, cache=self.caches.stats)
        self.result = result
        self.predictor = predictor
        state = _RunState(self.config.window_size, result)
        if listener is not None:
            listener.on_run_start(self, trace)
        self.run_span(columns, predictor, listener, state, 0, columns.n)
        result.instructions = columns.n
        result.cycles = state.last_retire + 1
        if listener is not None:
            listener.on_run_end(result, self)
        return result

    def run_span(self, columns: TraceColumns,
                 predictor: BranchPredictorComplex,
                 engine: Optional[SSMTEngine], state: _RunState,
                 lo: int, hi: int) -> None:
        """Run instructions ``[lo, hi)`` in full detail over ``state``.

        One fused pass: fetch bookkeeping, window dispatch, issue-slot
        allocation, control resolution and the engine's retire work,
        all against the predecoded columns.  Mirrors
        :meth:`OoOTimingModel.run` operation-for-operation.
        """
        cfg = self.config
        (flags, pcs, ops, dests, src1s, src2s, nsrcs, imms, eas,
         results_col, next_pcs) = columns.lists()
        records = columns.records
        result = state.result

        # -- machine constants / shared services ---------------------------
        caches = self.caches
        load_latency = caches.load_latency
        cache_store = caches.store
        reg_ready = self.reg_ready
        slots = self._slot_used
        slots_get = slots.get
        issue_width = cfg.issue_width
        frontend = cfg.frontend_depth
        redirect = cfg.redirect_after_resolve
        window = cfg.window_size
        fetch_width = cfg.fetch_width
        half_width = fetch_width // 2
        taken_limit = cfg.fetch_taken_limit
        retire_width = cfg.retire_width
        store_latency = cfg.store_latency
        mul_latency = cfg.mul_latency
        int_latency = cfg.int_latency
        btb_bubble = cfg.btb_miss_bubble
        predictor_process = predictor.process
        resolve_control = self._resolve_control

        # -- engine bindings (None-safe; engine is never reassigned) -------
        if engine is not None:
            spawn_index = engine.microram._by_spawn_pc
            engine_on_fetch = engine.on_fetch
            lookup_prediction = engine.lookup_prediction
            on_outcome = engine.on_prediction_outcome
            trainer = engine.trainer
            # Stride-predictor tables, unpacked for the inlined
            # train/is_confident bodies below.
            vp = trainer.value_predictor
            vp_entries = vp._entries
            vp_get = vp_entries.get
            vp_threshold = vp.confidence_threshold
            vp_maxconf = vp.max_confidence
            vp_capacity = vp.capacity
            ap = trainer.address_predictor
            ap_entries = ap._entries
            ap_get = ap_entries.get
            ap_threshold = ap.confidence_threshold
            ap_maxconf = ap.max_confidence
            ap_capacity = ap.capacity
            # PRB internals for the inlined ``insert_decoded`` body.
            # ``prb._next_pos`` is written back every insert so the
            # builder's mid-loop ``prb.get`` reads stay coherent.
            prb = engine.prb
            prb_ring = prb._ring
            prb_capacity = prb.capacity
            prb_reg_writer = prb._reg_writer
            prb_reg_get = prb_reg_writer.get
            prb_mem_writer = prb._mem_writer
            prb_mem_get = prb_mem_writer.get
            prb_next_pos = prb._next_pos
            prb_sweep_at = prb._sweep_at
            prb_sweep = prb._sweep_writers
            prb_entry_new = PRBEntry.__new__
            tracker = engine.tracker
            tracker_make_event = tracker._make_event
            tracker_append = tracker._append
            pending = engine._pending_mispredict
            pending_pop = pending.pop
            spawner = engine.spawner
            spawner_retire_past = spawner.retire_past
            retire_store_violation = engine._retire_store_violation
            retire_taken_control = engine._retire_taken_control
            retire_path_event = engine._retire_path_event
            reg_values = engine.reg_values
            memory = engine.memory
            quiet = engine._quiet
            sanitizer = engine.sanitizer
            telemetry_retire = engine._telemetry_retire
            control_hook = engine._telemetry_control
        else:
            spawn_index = ()
            lookup_prediction = None
            on_outcome = None
            quiet = True

        # -- cursor state ---------------------------------------------------
        fetch_cycle = state.fetch_cycle
        fetched_this_cycle = state.fetched_this_cycle
        taken_this_cycle = state.taken_this_cycle
        uops_this_cycle = state.uops_this_cycle
        fetch_barrier = state.fetch_barrier
        retire_ring = state.retire_ring
        last_retire = state.last_retire
        retired_in_cycle = state.retired_in_cycle
        last_store_complete = state.last_store_complete
        prev_was_taken = state.prev_was_taken
        # Frontend debt only changes inside ``on_fetch`` spawns (the
        # model's ``add_frontend_debt``), so it can live in a local that
        # is refreshed after each spawn-site call.
        frontend_debt = self._frontend_debt

        for idx in range(lo, hi):
            f = flags[idx]
            pc = pcs[idx]

            # ---- fetch ----------------------------------------------------
            if fetch_barrier > fetch_cycle:
                fetch_cycle = fetch_barrier
                fetched_this_cycle = 0
                taken_this_cycle = 0
                uops_this_cycle = 0
            if (fetched_this_cycle >= fetch_width
                    or taken_this_cycle >= taken_limit):
                fetch_cycle += 1
                fetched_this_cycle = 0
                taken_this_cycle = 0
                uops_this_cycle = 0
            while frontend_debt > 0:
                room = min(half_width - uops_this_cycle,
                           fetch_width - fetched_this_cycle)
                if room <= 0:
                    fetch_cycle += 1
                    fetched_this_cycle = 0
                    taken_this_cycle = 0
                    uops_this_cycle = 0
                    continue
                claim = min(frontend_debt, room)
                frontend_debt -= claim
                fetched_this_cycle += claim
                uops_this_cycle += claim
            fetched_this_cycle += 1
            if prev_was_taken:
                taken_this_cycle += 1

            if pc in spawn_index:
                # Inlined ``routines_at`` membership check (MicroRAM
                # deletes empty buckets, so presence == routines exist);
                # ``spawn_index`` is ``()`` without an engine.
                self._frontend_debt = frontend_debt
                prb._next_pos = prb_next_pos
                engine_on_fetch(idx, records[idx], fetch_cycle, self)
                frontend_debt = self._frontend_debt

            # ---- dispatch (window occupancy) ------------------------------
            dispatch = fetch_cycle + frontend
            slot_index = idx % window
            if idx >= window and retire_ring[slot_index] > dispatch:
                dispatch = retire_ring[slot_index]

            # ---- issue ----------------------------------------------------
            ready = dispatch
            nsrc = nsrcs[idx]
            if nsrc:
                t = reg_ready[src1s[idx]]
                if t > ready:
                    ready = t
                if nsrc > 1:
                    t = reg_ready[src2s[idx]]
                    if t > ready:
                        ready = t
            op = ops[idx]
            if op == _OP_LD:
                ea = eas[idx]
                t = last_store_complete.get(ea, 0)
                if t > ready:
                    ready = t
                else:
                    t = ready
                used = slots_get(t, 0)
                while used >= issue_width:
                    t += 1
                    used = slots_get(t, 0)
                slots[t] = used + 1
                issue = t
                complete = issue + load_latency(ea, issue)
            elif op == _OP_ST:
                ea = eas[idx]
                t = ready
                used = slots_get(t, 0)
                while used >= issue_width:
                    t += 1
                    used = slots_get(t, 0)
                slots[t] = used + 1
                issue = t
                cache_store(ea)
                complete = issue + store_latency
                last_store_complete[ea] = complete
            else:
                t = ready
                used = slots_get(t, 0)
                while used >= issue_width:
                    t += 1
                    used = slots_get(t, 0)
                slots[t] = used + 1
                issue = t
                complete = issue + (mul_latency if op == _OP_MUL
                                    else int_latency)

            if f & HAS_DEST:
                reg_ready[dests[idx]] = complete

            # ---- control resolution --------------------------------------
            prev_was_taken = False
            if f & IS_CONTROL:
                rec = records[idx]
                if f & IS_TAKEN:
                    prev_was_taken = True
                outcome = predictor_process(rec)
                hw_mis = outcome.mispredicted
                if f & IS_TERM:
                    if engine is not None:
                        # Inlined ``on_control``: stash the hardware
                        # outcome for the retire-side path event, and
                        # publish the PRB cursor before engine callbacks.
                        prb._next_pos = prb_next_pos
                        pending[idx] = hw_mis
                        if control_hook is not None:
                            control_hook(engine, idx, rec, outcome,
                                         fetch_cycle, complete)
                    effective_mis, recovery, bubble = resolve_control(
                        idx, rec, outcome, fetch_cycle, complete, result,
                        lookup_prediction, on_outcome)
                else:
                    effective_mis = hw_mis
                    recovery = complete
                    bubble = (outcome.btb_miss and outcome.predicted_taken
                              and not hw_mis)
                if f & IS_COND:
                    result.conditional_branches += 1
                elif f & IS_INDIRECT:
                    result.indirect_branches += 1
                if hw_mis:
                    result.hw_mispredicts += 1
                if effective_mis:
                    result.effective_mispredicts += 1
                    t = recovery + redirect
                    if t > fetch_barrier:
                        fetch_barrier = t
                elif bubble:
                    result.btb_bubbles += 1
                    t = fetch_cycle + btb_bubble
                    if t > fetch_barrier:
                        fetch_barrier = t

            # ---- retire ---------------------------------------------------
            if complete > last_retire:
                rc = complete
                retired_in_cycle = 1
            else:
                rc = last_retire
                retired_in_cycle += 1
                if retired_in_cycle > retire_width:
                    rc += 1
                    retired_in_cycle = 1
            last_retire = rc
            retire_ring[slot_index] = rc

            if engine is None:
                continue

            # ---- fused SSMTEngine.on_retire ------------------------------
            rec = records[idx]
            if f & IS_STORE:
                if f & HAS_EA and spawner.active:
                    prb._next_pos = prb_next_pos
                    retire_store_violation(idx, rec, rc)
            elif f & IS_CONTROL and f & IS_TAKEN and spawner.active:
                prb._next_pos = prb_next_pos
                retire_taken_control(idx, rec, rc)

            # Inlined PredictorTrainer.observe: the StridePredictor
            # ``is_confident``/``train`` bodies, sharing one table probe
            # (``tests/test_kernel.py`` pins the equivalence).
            entry = vp_get(pc)
            value_confident = (entry is not None
                               and entry.confidence >= vp_threshold)
            if f & HAS_DEST:
                vp.trains += 1
                value = results_col[idx]
                if entry is None:
                    if len(vp_entries) >= vp_capacity:
                        del vp_entries[next(iter(vp_entries))]
                    vp_entries[pc] = StrideEntry(value)
                else:
                    stride = (value - entry.last_value) & _M64
                    if stride == entry.stride:
                        if entry.confidence < vp_maxconf:
                            entry.confidence += 1
                    else:
                        entry.stride = stride
                        entry.confidence = 0
                    entry.last_value = value
            address_confident = False
            is_load = f & IS_LOAD
            if is_load:
                ea = eas[idx]
                entry = ap_get(pc)
                address_confident = (entry is not None
                                     and entry.confidence >= ap_threshold)
                ap.trains += 1
                base = (ea - imms[idx]) & _M64
                if entry is None:
                    if len(ap_entries) >= ap_capacity:
                        del ap_entries[next(iter(ap_entries))]
                    ap_entries[pc] = StrideEntry(base)
                else:
                    stride = (base - entry.last_value) & _M64
                    if stride == entry.stride:
                        if entry.confidence < ap_maxconf:
                            entry.confidence += 1
                    else:
                        entry.stride = stride
                        entry.confidence = 0
                    entry.last_value = base

            # Inlined PostRetirementBuffer.insert_decoded.  The PRB
            # cursor lives in ``prb_next_pos``; it is published to
            # ``prb._next_pos`` before every call that can re-enter the
            # engine (builder promotions read the PRB mid-loop) and at
            # span end, not per instruction.
            pos = prb_next_pos
            prb_next_pos = pos + 1
            floor = pos + 1 - prb_capacity
            if nsrc == 0:
                src_producers = ()
            elif nsrc == 1:
                p = prb_reg_get(src1s[idx])
                src_producers = (
                    p if p is not None and p >= floor else None,)
            else:
                p = prb_reg_get(src1s[idx])
                q = prb_reg_get(src2s[idx])
                src_producers = (
                    p if p is not None and p >= floor else None,
                    q if q is not None and q >= floor else None)
            mem_producer = None
            if is_load:
                p = prb_mem_get(ea)
                if p is not None and p >= floor:
                    mem_producer = p
            # ``PRBEntry.__new__`` + direct slot stores skips the
            # per-instruction ``__init__`` frame.
            entry = prb_entry_new(PRBEntry)
            entry.rec = rec
            entry.idx = idx
            entry.pos = pos
            entry.src_producers = src_producers
            entry.mem_producer = mem_producer
            entry.value_confident = value_confident
            entry.address_confident = address_confident
            prb_ring[pos % prb_capacity] = entry
            dest = dests[idx]
            if dest >= 0:
                prb_reg_writer[dest] = pos
            if f & IS_STORE:
                prb_mem_writer[eas[idx]] = pos
            if pos >= prb_sweep_at:
                prb_sweep(floor)
                prb_sweep_at = prb._sweep_at

            # Inlined PathTracker.observe + path-event handling.
            if f & IS_TERM:
                event = tracker_make_event(rec, idx)
                if f & IS_TAKEN:
                    tracker_append(pc, idx)
                mispredicted = pending_pop(idx, False)
                if not event.partial:
                    prb._next_pos = prb_next_pos
                    retire_path_event(event, mispredicted, rc)
            elif f & IS_CONTROL and f & IS_TAKEN:
                tracker_append(pc, idx)

            if spawner.active:
                spawner_retire_past(idx, rc)

            # Architectural state for microthread live-ins / memory view.
            if f & HAS_DEST:
                reg_values[dests[idx]] = results_col[idx]
            if f & IS_STORE and f & HAS_EA:
                memory[eas[idx]] = results_col[idx]

            if quiet:
                continue
            prb._next_pos = prb_next_pos
            if sanitizer is not None:
                sanitizer.on_retire(engine, idx, rec)
            if telemetry_retire is not None:
                telemetry_retire(engine, idx, rc)

        # -- store the cursor back -----------------------------------------
        state.fetch_cycle = fetch_cycle
        state.fetched_this_cycle = fetched_this_cycle
        state.taken_this_cycle = taken_this_cycle
        state.uops_this_cycle = uops_this_cycle
        state.fetch_barrier = fetch_barrier
        state.last_retire = last_retire
        state.retired_in_cycle = retired_in_cycle
        state.prev_was_taken = prev_was_taken
        self._frontend_debt = frontend_debt
        if engine is not None:
            prb._next_pos = prb_next_pos
