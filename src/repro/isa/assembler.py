"""A two-pass text assembler for the ISA.

Syntax example::

    .data counts 8 0 0 0 0 0 0 0 0   ; allocate + initialise 8 words
    main:
        li   r1, 0
        li   r2, 10
    loop:
        add  r3, r3, r1
        addi r1, r1, 1
        blt  r1, r2, loop
        halt

Comments start with ``;`` or ``#``.  ``.data NAME COUNT [init...]``
allocates a data array; its base address can be loaded with
``li rX, &NAME``.
"""

from __future__ import annotations

from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import (
    ALU_IMM_OPS,
    ALU_OPS,
    CONDITIONAL_BRANCHES,
    Opcode,
)
from repro.isa.program import Program
from repro.isa.registers import parse_register


class AssemblyError(Exception):
    """Raised on any syntax or semantic error during assembly."""


_OPCODES_BY_NAME = {op.name.lower(): op for op in Opcode}


def _parse_operand_imm(token: str, symbols: Dict[str, int], line_no: int) -> int:
    token = token.strip().rstrip(",")
    if token.startswith("&"):
        name = token[1:]
        if name not in symbols:
            raise AssemblyError(f"line {line_no}: unknown data symbol {name!r}")
        return symbols[name]
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"line {line_no}: bad immediate {token!r}") from exc


def _is_int_token(token: str) -> bool:
    try:
        int(token, 0)
    except ValueError:
        return False
    return True


def _split_mem_operand(token: str, line_no: int):
    """Parse ``imm(rX)`` into (imm_token, reg_token)."""
    token = token.strip().rstrip(",")
    if "(" not in token or not token.endswith(")"):
        raise AssemblyError(f"line {line_no}: bad memory operand {token!r}")
    imm_part, reg_part = token[:-1].split("(", 1)
    return imm_part or "0", reg_part


def assemble(text: str, name: str = "asm") -> Program:
    """Assemble source ``text`` into a linked :class:`Program`."""
    builder = ProgramBuilder(name=name)
    data_symbols: Dict[str, int] = {}

    # Pass 0: data directives must be resolved before code referencing them.
    lines = text.splitlines()
    for line_no, raw in enumerate(lines, start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line or not line.startswith(".data"):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise AssemblyError(f"line {line_no}: .data NAME COUNT [init...]")
        sym, count_tok = parts[1], parts[2]
        try:
            count = int(count_tok, 0)
        except ValueError as exc:
            raise AssemblyError(f"line {line_no}: bad count {count_tok!r}") from exc
        init = [int(tok, 0) for tok in parts[3:]]
        if sym in data_symbols:
            raise AssemblyError(f"line {line_no}: duplicate data symbol {sym!r}")
        data_symbols[sym] = builder.alloc(count, init)

    # Pass 1: code.
    for line_no, raw in enumerate(lines, start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line or line.startswith(".data"):
            continue
        while line.endswith(":") or (":" in line and " " not in line.split(":")[0]):
            label, _, rest = line.partition(":")
            builder.label(label.strip())
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        _assemble_line(builder, line, data_symbols, line_no)

    return builder.build()


def _assemble_line(
    builder: ProgramBuilder,
    line: str,
    symbols: Dict[str, int],
    line_no: int,
) -> None:
    parts = line.replace(",", " ").split()
    mnemonic = parts[0].lower()
    operands = parts[1:]
    if mnemonic not in _OPCODES_BY_NAME:
        raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
    op = _OPCODES_BY_NAME[mnemonic]

    def need(n: int) -> None:
        if len(operands) != n:
            raise AssemblyError(
                f"line {line_no}: {mnemonic} expects {n} operands, got {len(operands)}"
            )

    if op in ALU_OPS:
        need(3)
        builder.emit(
            op,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            rs2=parse_register(operands[2]),
        )
    elif op == Opcode.LI:
        need(2)
        token = operands[1].strip().rstrip(",")
        if token.startswith("&") or _is_int_token(token):
            imm = _parse_operand_imm(token, symbols, line_no)
        else:
            # A code label: resolved to its word address at link time.
            imm = token
        builder.emit(op, rd=parse_register(operands[0]), imm=imm)
    elif op == Opcode.MOV:
        need(2)
        builder.emit(
            op, rd=parse_register(operands[0]), rs1=parse_register(operands[1])
        )
    elif op in ALU_IMM_OPS:
        need(3)
        builder.emit(
            op,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            imm=_parse_operand_imm(operands[2], symbols, line_no),
        )
    elif op == Opcode.LD:
        need(2)
        imm_tok, reg_tok = _split_mem_operand(operands[1], line_no)
        builder.emit(
            op,
            rd=parse_register(operands[0]),
            rs1=parse_register(reg_tok),
            imm=_parse_operand_imm(imm_tok, symbols, line_no),
        )
    elif op == Opcode.ST:
        need(2)
        imm_tok, reg_tok = _split_mem_operand(operands[1], line_no)
        builder.emit(
            op,
            rs2=parse_register(operands[0]),
            rs1=parse_register(reg_tok),
            imm=_parse_operand_imm(imm_tok, symbols, line_no),
        )
    elif op in CONDITIONAL_BRANCHES:
        need(3)
        builder.emit(
            op,
            rs1=parse_register(operands[0]),
            rs2=parse_register(operands[1]),
            target=operands[2],
        )
    elif op in (Opcode.JMP, Opcode.CALL):
        need(1)
        builder.emit(op, target=operands[0])
    elif op == Opcode.JR:
        need(1)
        builder.emit(op, rs1=parse_register(operands[0]))
    elif op in (Opcode.RET, Opcode.NOP, Opcode.HALT):
        need(0)
        builder.emit(op)
    else:
        raise AssemblyError(
            f"line {line_no}: {mnemonic} is not assemblable (micro-op?)"
        )
