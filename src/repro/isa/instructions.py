"""Opcode definitions and the :class:`Instruction` record.

The opcode space is split into five families:

* ALU register-register and register-immediate operations,
* loads and stores (register + immediate displacement addressing),
* control transfers (conditional branches, direct jumps/calls, indirect
  jumps/returns),
* ``NOP``/``HALT`` housekeeping, and
* the three micro-instructions introduced by the paper, which are only
  legal inside subordinate microthreads: ``STORE_PCACHE`` (Section 4.2.2),
  ``VP_INST`` and ``AP_INST`` (Section 3.2.3 / 4.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Tuple

from repro.isa.registers import REG_ZERO, register_name


class Opcode(IntEnum):
    """All opcodes of the ISA (including microthread-only micro-ops)."""

    # ALU reg-reg
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    SLL = 6
    SRL = 7
    SRA = 8
    SLT = 9
    SLTU = 10
    MUL = 11
    # ALU reg-imm
    ADDI = 20
    ANDI = 21
    ORI = 22
    XORI = 23
    SLLI = 24
    SRLI = 25
    SLTI = 26
    LI = 27
    MOV = 28
    # Memory
    LD = 40
    ST = 41
    # Control
    BEQ = 60
    BNE = 61
    BLT = 62
    BGE = 63
    JMP = 70
    CALL = 71
    RET = 72
    JR = 73
    # Housekeeping
    NOP = 90
    HALT = 91
    # Microthread-only micro-instructions
    STORE_PCACHE = 100
    VP_INST = 101
    AP_INST = 102


ALU_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SLL,
        Opcode.SRL,
        Opcode.SRA,
        Opcode.SLT,
        Opcode.SLTU,
        Opcode.MUL,
    }
)

ALU_IMM_OPS = frozenset(
    {
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLLI,
        Opcode.SRLI,
        Opcode.SLTI,
        Opcode.LI,
        Opcode.MOV,
    }
)

CONDITIONAL_BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
DIRECT_JUMPS = frozenset({Opcode.JMP, Opcode.CALL})
INDIRECT_JUMPS = frozenset({Opcode.JR, Opcode.RET})
CONTROL_OPS = CONDITIONAL_BRANCHES | DIRECT_JUMPS | INDIRECT_JUMPS
#: Control transfers that always redirect the PC (count as "taken" for paths).
TAKEN_CONTROL_OPS = DIRECT_JUMPS | INDIRECT_JUMPS
MEMORY_OPS = frozenset({Opcode.LD, Opcode.ST})
MICRO_OPS = frozenset({Opcode.STORE_PCACHE, Opcode.VP_INST, Opcode.AP_INST})

#: Opcodes whose result can terminate a difficult path (paper Section 3:
#: "either a conditional or indirect terminating branch").
PATH_TERMINATING_OPS = CONDITIONAL_BRANCHES | INDIRECT_JUMPS


@dataclass
class Instruction:
    """One static instruction.

    ``target`` holds the branch destination for direct control transfers.
    During assembly it may temporarily be a label string; after linking it
    is always an ``int`` word address.  ``pc`` is assigned when the
    instruction is placed into a :class:`~repro.isa.program.Program`.
    """

    __slots__ = ("opcode", "rd", "rs1", "rs2", "imm", "target", "pc", "tag")

    opcode: Opcode
    rd: int
    rs1: int
    rs2: int
    imm: int
    target: Optional[object]
    pc: int
    tag: Optional[str]

    def __init__(
        self,
        opcode: Opcode,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: int = 0,
        target: Optional[object] = None,
        pc: int = -1,
        tag: Optional[str] = None,
    ):
        self.opcode = opcode
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        self.pc = pc
        self.tag = tag

    # -- classification -------------------------------------------------

    @property
    def is_control(self) -> bool:
        return self.opcode in CONTROL_OPS

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode in CONDITIONAL_BRANCHES

    @property
    def is_indirect(self) -> bool:
        return self.opcode in INDIRECT_JUMPS

    @property
    def is_path_terminating(self) -> bool:
        """True for branches that can terminate a difficult path."""
        return self.opcode in PATH_TERMINATING_OPS

    @property
    def is_call(self) -> bool:
        return self.opcode == Opcode.CALL

    @property
    def is_return(self) -> bool:
        return self.opcode == Opcode.RET

    @property
    def is_load(self) -> bool:
        return self.opcode == Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.opcode == Opcode.ST

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPS

    @property
    def is_micro_op(self) -> bool:
        return self.opcode in MICRO_OPS

    # -- dataflow --------------------------------------------------------

    def dest_reg(self) -> Optional[int]:
        """The architectural register written, or ``None``.

        Writes to ``r0`` are discarded and reported as ``None``.
        """
        op = self.opcode
        if op in ALU_OPS or op in ALU_IMM_OPS or op == Opcode.LD:
            return self.rd if self.rd != REG_ZERO else None
        if op == Opcode.CALL:
            from repro.isa.registers import REG_RA

            return REG_RA
        if op in (Opcode.VP_INST, Opcode.AP_INST):
            return self.rd if self.rd != REG_ZERO else None
        return None

    def src_regs(self) -> Tuple[int, ...]:
        """Architectural registers read, ``r0`` excluded."""
        op = self.opcode
        if op in ALU_OPS:
            srcs = (self.rs1, self.rs2)
        elif op in (Opcode.LI, Opcode.NOP, Opcode.HALT, Opcode.JMP, Opcode.CALL,
                    Opcode.VP_INST, Opcode.AP_INST):
            srcs = ()
        elif op in ALU_IMM_OPS:  # ADDI..SLTI, MOV
            srcs = (self.rs1,)
        elif op == Opcode.LD:
            srcs = (self.rs1,)
        elif op == Opcode.ST:
            srcs = (self.rs1, self.rs2)
        elif op in CONDITIONAL_BRANCHES:
            srcs = (self.rs1, self.rs2)
        elif op == Opcode.JR:
            srcs = (self.rs1,)
        elif op == Opcode.RET:
            from repro.isa.registers import REG_RA

            srcs = (REG_RA,)
        elif op == Opcode.STORE_PCACHE:
            srcs = (self.rs1,)
        else:
            srcs = ()
        return tuple(r for r in srcs if r != REG_ZERO)

    # -- display ---------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.pc}: {self.disassemble()}>"

    def disassemble(self) -> str:
        """Render the instruction in assembler syntax."""
        op = self.opcode
        name = op.name.lower()
        rn = register_name
        if op in ALU_OPS:
            return f"{name} {rn(self.rd)}, {rn(self.rs1)}, {rn(self.rs2)}"
        if op == Opcode.LI:
            return f"li {rn(self.rd)}, {self.imm}"
        if op == Opcode.MOV:
            return f"mov {rn(self.rd)}, {rn(self.rs1)}"
        if op in ALU_IMM_OPS:
            return f"{name} {rn(self.rd)}, {rn(self.rs1)}, {self.imm}"
        if op == Opcode.LD:
            return f"ld {rn(self.rd)}, {self.imm}({rn(self.rs1)})"
        if op == Opcode.ST:
            return f"st {rn(self.rs2)}, {self.imm}({rn(self.rs1)})"
        if op in CONDITIONAL_BRANCHES:
            return f"{name} {rn(self.rs1)}, {rn(self.rs2)}, {self.target}"
        if op in (Opcode.JMP, Opcode.CALL):
            return f"{name} {self.target}"
        if op == Opcode.JR:
            return f"jr {rn(self.rs1)}"
        if op == Opcode.RET:
            return "ret"
        if op == Opcode.STORE_PCACHE:
            return f"store_pcache {rn(self.rs1)}"
        if op in (Opcode.VP_INST, Opcode.AP_INST):
            return f"{name} {rn(self.rd)}, pc={self.imm}"
        return name

    def copy(self) -> "Instruction":
        """A field-for-field copy (used by the microthread builder)."""
        return Instruction(
            self.opcode, self.rd, self.rs1, self.rs2, self.imm, self.target,
            self.pc, self.tag,
        )
