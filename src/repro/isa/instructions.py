"""Opcode definitions and the :class:`Instruction` record.

The opcode space is split into five families:

* ALU register-register and register-immediate operations,
* loads and stores (register + immediate displacement addressing),
* control transfers (conditional branches, direct jumps/calls, indirect
  jumps/returns),
* ``NOP``/``HALT`` housekeeping, and
* the three micro-instructions introduced by the paper, which are only
  legal inside subordinate microthreads: ``STORE_PCACHE`` (Section 4.2.2),
  ``VP_INST`` and ``AP_INST`` (Section 3.2.3 / 4.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Tuple

from repro.isa.registers import REG_RA, REG_ZERO, register_name


class Opcode(IntEnum):
    """All opcodes of the ISA (including microthread-only micro-ops)."""

    # ALU reg-reg
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    SLL = 6
    SRL = 7
    SRA = 8
    SLT = 9
    SLTU = 10
    MUL = 11
    # ALU reg-imm
    ADDI = 20
    ANDI = 21
    ORI = 22
    XORI = 23
    SLLI = 24
    SRLI = 25
    SLTI = 26
    LI = 27
    MOV = 28
    # Memory
    LD = 40
    ST = 41
    # Control
    BEQ = 60
    BNE = 61
    BLT = 62
    BGE = 63
    JMP = 70
    CALL = 71
    RET = 72
    JR = 73
    # Housekeeping
    NOP = 90
    HALT = 91
    # Microthread-only micro-instructions
    STORE_PCACHE = 100
    VP_INST = 101
    AP_INST = 102


ALU_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SLL,
        Opcode.SRL,
        Opcode.SRA,
        Opcode.SLT,
        Opcode.SLTU,
        Opcode.MUL,
    }
)

ALU_IMM_OPS = frozenset(
    {
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLLI,
        Opcode.SRLI,
        Opcode.SLTI,
        Opcode.LI,
        Opcode.MOV,
    }
)

CONDITIONAL_BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
DIRECT_JUMPS = frozenset({Opcode.JMP, Opcode.CALL})
INDIRECT_JUMPS = frozenset({Opcode.JR, Opcode.RET})
CONTROL_OPS = CONDITIONAL_BRANCHES | DIRECT_JUMPS | INDIRECT_JUMPS
#: Control transfers that always redirect the PC (count as "taken" for paths).
TAKEN_CONTROL_OPS = DIRECT_JUMPS | INDIRECT_JUMPS
MEMORY_OPS = frozenset({Opcode.LD, Opcode.ST})
MICRO_OPS = frozenset({Opcode.STORE_PCACHE, Opcode.VP_INST, Opcode.AP_INST})

#: Opcodes whose result can terminate a difficult path (paper Section 3:
#: "either a conditional or indirect terminating branch").
PATH_TERMINATING_OPS = CONDITIONAL_BRANCHES | INDIRECT_JUMPS


def _classify_dest(op: Opcode, rd: int) -> Optional[int]:
    """Static destination register of ``(op, rd)``; ``r0`` writes are None."""
    if op in ALU_OPS or op in ALU_IMM_OPS or op == Opcode.LD:
        return rd if rd != REG_ZERO else None
    if op == Opcode.CALL:
        return REG_RA
    if op in (Opcode.VP_INST, Opcode.AP_INST):
        return rd if rd != REG_ZERO else None
    return None


def _classify_srcs(op: Opcode, rs1: int, rs2: int) -> Tuple[int, ...]:
    """Static source registers of ``(op, rs1, rs2)``, ``r0`` excluded."""
    if op in ALU_OPS:
        srcs = (rs1, rs2)
    elif op in (Opcode.LI, Opcode.NOP, Opcode.HALT, Opcode.JMP, Opcode.CALL,
                Opcode.VP_INST, Opcode.AP_INST):
        srcs = ()
    elif op in ALU_IMM_OPS:  # ADDI..SLTI, MOV
        srcs = (rs1,)
    elif op == Opcode.LD:
        srcs = (rs1,)
    elif op == Opcode.ST:
        srcs = (rs1, rs2)
    elif op in CONDITIONAL_BRANCHES:
        srcs = (rs1, rs2)
    elif op == Opcode.JR:
        srcs = (rs1,)
    elif op == Opcode.RET:
        srcs = (REG_RA,)
    elif op == Opcode.STORE_PCACHE:
        srcs = (rs1,)
    else:
        srcs = ()
    return tuple(r for r in srcs if r != REG_ZERO)


#: per-opcode classification flags, computed once at import:
#: (is_control, is_conditional_branch, is_indirect, is_path_terminating,
#:  is_call, is_return, is_load, is_store, is_memory, is_micro_op)
_OP_FLAGS = {
    op: (
        op in CONTROL_OPS,
        op in CONDITIONAL_BRANCHES,
        op in INDIRECT_JUMPS,
        op in PATH_TERMINATING_OPS,
        op == Opcode.CALL,
        op == Opcode.RET,
        op == Opcode.LD,
        op == Opcode.ST,
        op in MEMORY_OPS,
        op in MICRO_OPS,
    )
    for op in Opcode
}


@dataclass
class Instruction:
    """One static instruction.

    ``target`` holds the branch destination for direct control transfers.
    During assembly it may temporarily be a label string; after linking it
    is always an ``int`` word address.  ``pc`` is assigned when the
    instruction is placed into a :class:`~repro.isa.program.Program`.

    Classification flags (``is_control``, ``is_load``, ...) and the
    dataflow sets (``dest``, ``srcs``) are fixed by ``(opcode, rd, rs1,
    rs2)`` and precomputed at construction, because the timing model and
    the SSMT retire loop read them once per *dynamic* instance — the
    hottest accesses in the whole simulator.  Opcode and register fields
    must therefore not be mutated after construction.
    """

    __slots__ = (
        "opcode", "rd", "rs1", "rs2", "imm", "target", "pc", "tag",
        # precomputed classification (plain attributes, hot-path reads)
        "is_control", "is_conditional_branch", "is_indirect",
        "is_path_terminating", "is_call", "is_return", "is_load",
        "is_store", "is_memory", "is_micro_op",
        # precomputed dataflow
        "dest", "srcs",
    )

    opcode: Opcode
    rd: int
    rs1: int
    rs2: int
    imm: int
    target: Optional[object]
    pc: int
    tag: Optional[str]

    def __init__(
        self,
        opcode: Opcode,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: int = 0,
        target: Optional[object] = None,
        pc: int = -1,
        tag: Optional[str] = None,
    ):
        self.opcode = opcode
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        self.pc = pc
        self.tag = tag
        (self.is_control, self.is_conditional_branch, self.is_indirect,
         self.is_path_terminating, self.is_call, self.is_return,
         self.is_load, self.is_store, self.is_memory,
         self.is_micro_op) = _OP_FLAGS[opcode]
        self.dest: Optional[int] = _classify_dest(opcode, rd)
        self.srcs: Tuple[int, ...] = _classify_srcs(opcode, rs1, rs2)

    # -- dataflow --------------------------------------------------------

    def dest_reg(self) -> Optional[int]:
        """The architectural register written, or ``None``.

        Writes to ``r0`` are discarded and reported as ``None``.
        """
        return self.dest

    def src_regs(self) -> Tuple[int, ...]:
        """Architectural registers read, ``r0`` excluded."""
        return self.srcs

    # -- display ---------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.pc}: {self.disassemble()}>"

    def disassemble(self) -> str:
        """Render the instruction in assembler syntax."""
        op = self.opcode
        name = op.name.lower()
        rn = register_name
        if op in ALU_OPS:
            return f"{name} {rn(self.rd)}, {rn(self.rs1)}, {rn(self.rs2)}"
        if op == Opcode.LI:
            return f"li {rn(self.rd)}, {self.imm}"
        if op == Opcode.MOV:
            return f"mov {rn(self.rd)}, {rn(self.rs1)}"
        if op in ALU_IMM_OPS:
            return f"{name} {rn(self.rd)}, {rn(self.rs1)}, {self.imm}"
        if op == Opcode.LD:
            return f"ld {rn(self.rd)}, {self.imm}({rn(self.rs1)})"
        if op == Opcode.ST:
            return f"st {rn(self.rs2)}, {self.imm}({rn(self.rs1)})"
        if op in CONDITIONAL_BRANCHES:
            return f"{name} {rn(self.rs1)}, {rn(self.rs2)}, {self.target}"
        if op in (Opcode.JMP, Opcode.CALL):
            return f"{name} {self.target}"
        if op == Opcode.JR:
            return f"jr {rn(self.rs1)}"
        if op == Opcode.RET:
            return "ret"
        if op == Opcode.STORE_PCACHE:
            return f"store_pcache {rn(self.rs1)}"
        if op in (Opcode.VP_INST, Opcode.AP_INST):
            return f"{name} {rn(self.rd)}, pc={self.imm}"
        return name

    def copy(self) -> "Instruction":
        """A field-for-field copy (used by the microthread builder)."""
        return Instruction(
            self.opcode, self.rd, self.rs1, self.rs2, self.imm, self.target,
            self.pc, self.tag,
        )
