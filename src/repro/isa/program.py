"""Program container: instruction memory, labels and a data segment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.isa.instructions import Instruction, Opcode


class ProgramError(Exception):
    """Raised for malformed programs (unresolved labels, bad entry, ...)."""


@dataclass
class DataSegment:
    """Initial data-memory image.

    Addresses are 64-bit byte-like flat addresses (the ISA does not impose
    alignment; one address holds one 64-bit value, which keeps the memory
    model simple and matches the word-addressed instruction memory).
    """

    base: int = 0x10000
    values: Dict[int, int] = field(default_factory=dict)

    def store(self, address: int, value: int) -> None:
        self.values[address] = value

    def load(self, address: int) -> int:
        return self.values.get(address, 0)


class Program:
    """A linked program: instructions with resolved targets plus data.

    Instructions are stored at consecutive word addresses starting at 0.
    ``labels`` maps symbolic names to word addresses.
    """

    def __init__(
        self,
        instructions: Iterable[Instruction],
        labels: Optional[Dict[str, int]] = None,
        data: Optional[DataSegment] = None,
        entry: int = 0,
        name: str = "program",
    ):
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self.data: DataSegment = data or DataSegment()
        self.entry = entry
        self.name = name
        self._assign_pcs()
        self._resolve_targets()
        self._validate()

    def _assign_pcs(self) -> None:
        for pc, inst in enumerate(self.instructions):
            inst.pc = pc

    def _resolve_targets(self) -> None:
        for inst in self.instructions:
            if isinstance(inst.target, str):
                if inst.target not in self.labels:
                    raise ProgramError(
                        f"unresolved label {inst.target!r} at pc {inst.pc}"
                    )
                inst.target = self.labels[inst.target]
            # LI supports label immediates so generated code can build
            # jump tables from code addresses.
            if inst.opcode == Opcode.LI and isinstance(inst.imm, str):
                if inst.imm not in self.labels:
                    raise ProgramError(
                        f"unresolved label immediate {inst.imm!r} at pc {inst.pc}"
                    )
                inst.imm = self.labels[inst.imm]

    def _validate(self) -> None:
        if not self.instructions:
            raise ProgramError("empty program")
        if not 0 <= self.entry < len(self.instructions):
            raise ProgramError(f"entry point {self.entry} out of range")
        n = len(self.instructions)
        for inst in self.instructions:
            if inst.is_micro_op:
                raise ProgramError(
                    f"micro-op {inst.opcode.name} is not legal in a program"
                )
            if inst.target is not None and not isinstance(inst.target, int):
                raise ProgramError(f"unresolved target at pc {inst.pc}")
            if isinstance(inst.target, int) and not 0 <= inst.target < n:
                raise ProgramError(
                    f"branch target {inst.target} out of range at pc {inst.pc}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def static_branch_count(self) -> int:
        """Number of static control-transfer instructions."""
        return sum(1 for inst in self.instructions if inst.is_control)

    def disassemble(self) -> str:
        """Full listing with labels, one instruction per line."""
        by_addr: Dict[int, List[str]] = {}
        for name, addr in self.labels.items():
            by_addr.setdefault(addr, []).append(name)
        lines = []
        for inst in self.instructions:
            for name in by_addr.get(inst.pc, ()):
                lines.append(f"{name}:")
            lines.append(f"  {inst.pc:6d}  {inst.disassemble()}")
        return "\n".join(lines)
