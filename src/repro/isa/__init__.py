"""A small 64-bit RISC-like instruction set.

This package provides the instruction set architecture that every other
subsystem builds on: opcode definitions, the :class:`Instruction` record,
register names, :class:`Program` containers, a two-pass text assembler, and
a programmatic :class:`ProgramBuilder` used by the synthetic workload
generator.

The ISA plays the role that the Alpha EV6 ISA plays in the paper.  PCs are
word addresses (one per instruction) and all integer state is 64-bit.
"""

from repro.isa.instructions import (
    Opcode,
    Instruction,
    ALU_OPS,
    ALU_IMM_OPS,
    CONDITIONAL_BRANCHES,
    DIRECT_JUMPS,
    INDIRECT_JUMPS,
    TAKEN_CONTROL_OPS,
    CONTROL_OPS,
    MEMORY_OPS,
    MICRO_OPS,
)
from repro.isa.registers import (
    NUM_REGS,
    REG_ZERO,
    REG_SP,
    REG_FP,
    REG_RA,
    REG_RV,
    register_name,
    parse_register,
)
from repro.isa.program import Program, DataSegment
from repro.isa.builder import ProgramBuilder
from repro.isa.assembler import assemble, AssemblyError

__all__ = [
    "Opcode",
    "Instruction",
    "ALU_OPS",
    "ALU_IMM_OPS",
    "CONDITIONAL_BRANCHES",
    "DIRECT_JUMPS",
    "INDIRECT_JUMPS",
    "TAKEN_CONTROL_OPS",
    "CONTROL_OPS",
    "MEMORY_OPS",
    "MICRO_OPS",
    "NUM_REGS",
    "REG_ZERO",
    "REG_SP",
    "REG_FP",
    "REG_RA",
    "REG_RV",
    "register_name",
    "parse_register",
    "Program",
    "DataSegment",
    "ProgramBuilder",
    "assemble",
    "AssemblyError",
]
