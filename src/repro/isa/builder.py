"""Programmatic code generation.

:class:`ProgramBuilder` is the interface the synthetic workload generator
uses to emit code: append instructions, define labels (with forward
references), and allocate initialised data arrays.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import DataSegment, Program, ProgramError


class ProgramBuilder:
    """Accumulates instructions and data, then links a :class:`Program`."""

    def __init__(self, name: str = "program", data_base: int = 0x10000):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._data = DataSegment(base=data_base)
        self._next_data = data_base
        self._label_counter = itertools.count()

    # -- code ------------------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: int = 0,
        target: Optional[object] = None,
        tag: Optional[str] = None,
    ) -> Instruction:
        """Append an instruction; ``target`` may be a label string."""
        inst = Instruction(opcode, rd, rs1, rs2, imm, target, tag=tag)
        self._instructions.append(inst)
        return inst

    def label(self, name: Optional[str] = None) -> str:
        """Bind ``name`` (or a fresh unique name) to the next address."""
        if name is None:
            name = f".L{next(self._label_counter)}"
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return name

    def fresh_label(self, prefix: str = ".L") -> str:
        """Reserve a unique label name without binding it yet."""
        return f"{prefix}{next(self._label_counter)}"

    def bind(self, name: str) -> None:
        """Bind a previously reserved label name to the next address."""
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    @property
    def here(self) -> int:
        """Address of the next instruction to be emitted."""
        return len(self._instructions)

    # -- data ------------------------------------------------------------

    def alloc(self, count: int, init: Optional[Sequence[int]] = None) -> int:
        """Allocate ``count`` words of data memory; return the base address."""
        base = self._next_data
        self._next_data += count
        if init is not None:
            if len(init) > count:
                raise ProgramError("initializer longer than allocation")
            for offset, value in enumerate(init):
                self._data.store(base + offset, int(value))
        return base

    # -- convenience emitters ---------------------------------------------

    def li(self, rd: int, imm: int) -> Instruction:
        return self.emit(Opcode.LI, rd=rd, imm=imm)

    def mov(self, rd: int, rs1: int) -> Instruction:
        return self.emit(Opcode.MOV, rd=rd, rs1=rs1)

    def addi(self, rd: int, rs1: int, imm: int) -> Instruction:
        return self.emit(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)

    def ld(self, rd: int, rs1: int, imm: int = 0) -> Instruction:
        return self.emit(Opcode.LD, rd=rd, rs1=rs1, imm=imm)

    def st(self, rs2: int, rs1: int, imm: int = 0) -> Instruction:
        return self.emit(Opcode.ST, rs1=rs1, rs2=rs2, imm=imm)

    def jmp(self, target: str) -> Instruction:
        return self.emit(Opcode.JMP, target=target)

    def call(self, target: str) -> Instruction:
        return self.emit(Opcode.CALL, target=target)

    def ret(self) -> Instruction:
        return self.emit(Opcode.RET)

    def branch(self, opcode: Opcode, rs1: int, rs2: int, target: str,
               tag: Optional[str] = None) -> Instruction:
        return self.emit(opcode, rs1=rs1, rs2=rs2, target=target, tag=tag)

    # -- linking -----------------------------------------------------------

    def build(self, entry: int = 0) -> Program:
        """Link and validate the accumulated program."""
        return Program(
            self._instructions,
            labels=self._labels,
            data=self._data,
            entry=entry,
            name=self.name,
        )
