"""Register file conventions.

Thirty-two general-purpose 64-bit integer registers.  ``r0`` is hardwired
to zero, as in most RISC ISAs; writes to it are discarded.  A handful of
registers have conventional roles used by the workload generator's calling
convention.
"""

from __future__ import annotations

NUM_REGS = 32

REG_ZERO = 0  #: hardwired zero
REG_RV = 2  #: function return value
REG_FP = 28  #: frame pointer
REG_SP = 29  #: stack pointer
REG_RA = 31  #: return address (written by CALL, read by RET)

_ALIASES = {
    "zero": REG_ZERO,
    "rv": REG_RV,
    "fp": REG_FP,
    "sp": REG_SP,
    "ra": REG_RA,
}

_REVERSE_ALIASES = {v: k for k, v in _ALIASES.items()}


def register_name(index: int) -> str:
    """Return the canonical display name for a register index."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index out of range: {index}")
    return _REVERSE_ALIASES.get(index, f"r{index}")


def parse_register(token: str) -> int:
    """Parse a register token such as ``r7``, ``sp`` or ``zero``."""
    token = token.strip().lower().rstrip(",")
    if token in _ALIASES:
        return _ALIASES[token]
    if token.startswith("r"):
        try:
            index = int(token[1:])
        except ValueError as exc:
            raise ValueError(f"bad register token: {token!r}") from exc
        if 0 <= index < NUM_REGS:
            return index
    raise ValueError(f"bad register token: {token!r}")
