"""Parallel sweep engine: process-pool fan-out with on-disk result caching.

The paper's evaluation sweeps many (workload x machine x mechanism)
points; this package is the infrastructure that makes such sweeps cheap:

* :mod:`repro.parallel.taskkey` — deterministic per-point task keys
  (stable hash of workload spec + configs + code-schema version),
* :mod:`repro.parallel.cache` — an on-disk result cache keyed by task
  key, so re-runs and resumed sweeps skip completed points,
* :mod:`repro.parallel.worker` — the picklable per-point simulation,
* :mod:`repro.parallel.runner` — the process-pool runner (dedup, cache,
  bounded crash retry, per-stall timeout, serial fallback),
* :mod:`repro.parallel.sweep` — grid expansion and the merged
  ``repro.sweep/1`` artifact.

Every experiment driver (``repro sweep``, ``repro experiment``, the
``repro.analysis.sweeps`` helpers, and the benchmark ablation suites)
routes its simulations through :class:`SweepRunner`, so ``--jobs N`` /
``$REPRO_JOBS`` and ``--cache-dir`` apply uniformly.  See
``docs/telemetry.md`` ("Parallel sweeps") for the task-key/caching
contract.
"""

from repro.parallel.taskkey import (
    CODE_SCHEMA_VERSION,
    TASK_KINDS,
    SweepTask,
    canonical_json,
    task_key,
)
from repro.parallel.cache import POINT_SCHEMA, ResultCache, ResultStore
from repro.parallel.worker import engine_metrics, point_ipc, run_task
from repro.parallel.runner import (
    JOBS_ENV,
    SweepOutcome,
    SweepRunner,
    default_jobs,
)
from repro.parallel.sweep import (
    SWEEP_SCHEMA,
    build_grid,
    merge_sweep,
    parse_knob_value,
)

__all__ = [
    "CODE_SCHEMA_VERSION",
    "TASK_KINDS",
    "SweepTask",
    "canonical_json",
    "task_key",
    "POINT_SCHEMA",
    "ResultCache",
    "ResultStore",
    "engine_metrics",
    "point_ipc",
    "run_task",
    "JOBS_ENV",
    "SweepOutcome",
    "SweepRunner",
    "default_jobs",
    "SWEEP_SCHEMA",
    "build_grid",
    "merge_sweep",
    "parse_knob_value",
]
