"""Content-addressed result stores for sweep points, keyed by task key.

:class:`ResultStore` is the backend interface: a mapping from task key
to one completed point payload, with hit/miss/write accounting.  Because
the task key already encodes the workload spec, both configs and
:data:`~repro.parallel.taskkey.CODE_SCHEMA_VERSION`, a store can be
shared freely across sweeps, branches, machines, and service tenants: a
stale or incompatible entry is unreachable by construction, not filtered
at read time.

:class:`ResultCache` is the local-disk backend — one JSON file per
completed point, named ``<task_key>.json`` under the store root.  Writes
are atomic (temp file + ``os.replace``) so a killed sweep never leaves a
torn entry; reads validate the payload's schema and embedded
``task_key`` and treat anything unreadable, foreign, or mismatched as a
miss (the point simply re-runs).  Further backends (in-memory for tests,
remote object stores later) subclass :class:`ResultStore` — see
:mod:`repro.serve.store`.
"""

from __future__ import annotations

import json
import os
import tempfile
from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from repro.schemas import schema_string

#: Schema of one cached/returned sweep-point payload.
POINT_SCHEMA = schema_string("repro.sweep.point", 1)


class ResultStore(ABC):
    """Content-addressed store of completed sweep-point payloads.

    The contract every backend must keep:

    * :meth:`get` returns the exact payload :meth:`put` stored (payloads
      are already JSON-round-trip normalised by the worker, so identity
      is byte-level after ``json.dumps(..., sort_keys=True)``);
    * anything unreadable, foreign, or mismatched reads as a miss —
      never an error — so a shared store can hold torn or alien entries
      without poisoning a sweep;
    * :meth:`put` validates that the payload's embedded ``task_key``
      matches the store key (the content-addressing invariant);
    * ``hits`` / ``misses`` / ``writes`` / ``invalid`` counters are
      maintained for observability.
    """

    hits: int
    misses: int
    writes: int
    invalid: int

    @abstractmethod
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on miss."""

    @abstractmethod
    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (atomically, if durable)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of entries currently in the store."""

    def __contains__(self, key: str) -> bool:
        """Membership without touching the hit/miss counters."""
        before_hits, before_misses = self.hits, self.misses
        present = self.get(key) is not None
        self.hits, self.misses = before_hits, before_misses
        return present

    @staticmethod
    def check_key(key: str, payload: Dict[str, Any]) -> None:
        """Enforce the content-addressing invariant on a write."""
        if payload.get("task_key") != key:
            raise ValueError(f"payload task_key {payload.get('task_key')!r} "
                             f"does not match store key {key!r}")


class ResultCache(ResultStore):
    """Directory of ``<task_key>.json`` point payloads (disk backend)."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0  # unreadable or mismatched entries seen

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` on miss.

        Corrupt or mismatched files count as misses (and are left in
        place for post-mortems; a re-run overwrites them atomically).
        """
        path = self.path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            if os.path.exists(path):
                self.invalid += 1
            self.misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != POINT_SCHEMA
                or payload.get("task_key") != key):
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        self.check_key(key, payload)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))
