"""On-disk result cache for sweep points, keyed by task key.

One JSON file per completed point, named ``<task_key>.json`` under the
cache root.  Writes are atomic (temp file + ``os.replace``) so a killed
sweep never leaves a torn entry; reads validate the payload's schema and
embedded ``task_key`` and treat anything unreadable, foreign, or
mismatched as a miss (the point simply re-runs).

Because the task key already encodes the workload spec, both configs and
:data:`~repro.parallel.taskkey.CODE_SCHEMA_VERSION`, a cache directory
can be shared freely across sweeps, branches, and machines: a stale or
incompatible entry is unreachable by construction, not filtered at read
time.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.schemas import schema_string

#: Schema of one cached/returned sweep-point payload.
POINT_SCHEMA = schema_string("repro.sweep.point", 1)


class ResultCache:
    """Directory of ``<task_key>.json`` point payloads."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0  # unreadable or mismatched entries seen

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` on miss.

        Corrupt or mismatched files count as misses (and are left in
        place for post-mortems; a re-run overwrites them atomically).
        """
        path = self.path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            if os.path.exists(path):
                self.invalid += 1
            self.misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != POINT_SCHEMA
                or payload.get("task_key") != key):
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        if payload.get("task_key") != key:
            raise ValueError(f"payload task_key {payload.get('task_key')!r} "
                             f"does not match cache key {key!r}")
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))
