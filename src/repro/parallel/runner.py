"""Process-pool sweep runner with caching, retries, and serial fallback.

:class:`SweepRunner` executes a list of :class:`SweepTask` points and
returns their payloads in task order.  The execution strategy:

1. **Dedup** — tasks with equal task keys are simulated once and fanned
   back out (grids routinely repeat the same baseline point).
2. **Cache** — with a ``cache_dir``, completed points are read from /
   written to the on-disk :class:`~repro.parallel.cache.ResultCache`;
   a resumed or repeated sweep skips every cached point.
3. **Pool** — remaining points fan out over a
   ``concurrent.futures.ProcessPoolExecutor`` with ``jobs`` workers.
   A crashed worker (``BrokenProcessPool``) triggers a bounded number
   of pool rebuilds for the unfinished points; when retries are
   exhausted — or the pool cannot be created at all — the runner
   degrades gracefully to in-process serial execution.  ``jobs <= 1``
   runs serially from the start, with byte-identical results.
4. **Timeout** — ``task_timeout`` bounds how long the runner waits
   without *any* point completing; on such a stall the outstanding
   points are cancelled and recorded as failures (result ``None``).

Simulations are deterministic, so serial, parallel, and cached
executions of the same task yield bit-identical payloads (asserted by
``tests/test_parallel.py``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.parallel.cache import ResultCache, ResultStore
from repro.parallel.taskkey import SweepTask
from repro.parallel.worker import run_task

WorkerFn = Callable[[SweepTask], Dict[str, Any]]

#: Environment override for the default worker count (used when a
#: driver does not pass ``jobs`` explicitly, e.g. the benchmark suite).
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """``$REPRO_JOBS`` if set and valid, else 1 (serial)."""
    raw = os.environ.get(JOBS_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass
class SweepOutcome:
    """Results aligned with the input tasks, plus execution accounting."""

    results: List[Optional[Dict[str, Any]]]
    simulated: int = 0     # unique points actually simulated
    cache_hits: int = 0    # unique points served from the cache
    deduped: int = 0       # tasks folded onto another task's key
    failures: int = 0      # unique points with no result
    retries: int = 0       # pool rebuilds after worker crashes
    jobs: int = 1
    cache_misses: int = 0  # unique points the cache was asked for but lacked
    workers: int = 0       # pool workers actually engaged (1 when serial)
    rebuilds: int = 0      # worker pools rebuilt after crashes
    elapsed: float = 0.0
    errors: Dict[str, str] = field(default_factory=dict)  # key -> reason

    @property
    def points(self) -> int:
        return len(self.results)

    def summary_line(self) -> str:
        """One greppable line (CI asserts on it; keep the format stable).

        New fields go *after* ``jobs=`` — existing consumers assert on
        the prefix up to and including that field.
        """
        return (f"sweep: points={self.points} simulated={self.simulated} "
                f"cache_hits={self.cache_hits} deduped={self.deduped} "
                f"failures={self.failures} retries={self.retries} "
                f"jobs={self.jobs} cache_misses={self.cache_misses} "
                f"workers={self.workers} rebuilds={self.rebuilds} "
                f"elapsed={self.elapsed:.2f}s")


class SweepRunner:
    """Fan a grid of sweep points across a process pool; see module doc."""

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 resume: bool = True,
                 task_timeout: Optional[float] = None,
                 max_retries: int = 1,
                 worker: WorkerFn = run_task,
                 observer: Optional[Any] = None,
                 cache: Optional[ResultStore] = None):
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        #: ``cache`` injects any ResultStore backend (e.g. the service's
        #: shared store); ``cache_dir`` is the local-disk shorthand.
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache= or cache_dir=, not both")
        self.cache: Optional[ResultStore] = (
            cache if cache is not None
            else ResultCache(cache_dir) if cache_dir else None)
        #: read cached points (writes always happen with a cache_dir)
        self.resume = resume
        self.task_timeout = task_timeout
        self.max_retries = max(0, max_retries)
        self.worker = worker
        #: optional duck-typed observer (e.g. ``repro.obs.SweepObs``):
        #: on_cache_hit/on_cache_miss/on_dispatch/on_task_done/
        #: on_task_failed/on_heartbeat/on_stall/on_rebuild, plus a
        #: ``heartbeat_interval`` (seconds) the drain loop wakes on.
        #: ``None`` keeps every call site at one identity test, and the
        #: parallel layer never imports ``repro.obs`` itself.
        self.observer = observer

    # -- public API ----------------------------------------------------------

    def run(self, tasks: List[SweepTask]) -> SweepOutcome:
        start = time.monotonic()
        outcome = SweepOutcome(results=[None] * len(tasks), jobs=self.jobs)

        # 1. dedup on task key, preserving first-seen order
        unique: Dict[str, SweepTask] = {}
        keys: List[str] = []
        for task in tasks:
            key = task.key
            keys.append(key)
            if key in unique:
                outcome.deduped += 1
            else:
                unique[key] = task

        # 2. cache reads
        observer = self.observer
        reading_cache = self.cache is not None and self.resume
        payloads: Dict[str, Dict[str, Any]] = {}
        pending: List[SweepTask] = []
        for key, task in unique.items():
            hit = self.cache.get(key) if reading_cache else None
            if hit is not None:
                payloads[key] = hit
                outcome.cache_hits += 1
                if observer is not None:
                    observer.on_cache_hit(task)
            else:
                pending.append(task)
                if reading_cache:
                    outcome.cache_misses += 1
                    if observer is not None:
                        observer.on_cache_miss(task)

        # 3. execute what's left
        if pending:
            if self.jobs <= 1:
                outcome.workers = 1
                computed = self._run_serial(pending, outcome)
            else:
                outcome.workers = min(self.jobs, len(pending))
                computed = self._run_parallel(pending, outcome)
            for key, payload in computed.items():
                payloads[key] = payload
                outcome.simulated += 1
                if self.cache is not None:
                    self.cache.put(key, payload)

        # 4. fan results back out in task order; the label is a property
        # of the grid column, so cached/deduped payloads take the
        # requesting task's label.
        for i, (task, key) in enumerate(zip(tasks, keys)):
            payload = payloads.get(key)
            if payload is not None:
                outcome.results[i] = dict(payload, label=task.label)
        outcome.failures = len(unique) - len(payloads)
        outcome.elapsed = time.monotonic() - start
        return outcome

    # -- execution strategies -------------------------------------------------

    def _run_serial(self, tasks: List[SweepTask],
                    outcome: SweepOutcome) -> Dict[str, Dict[str, Any]]:
        observer = self.observer
        done: Dict[str, Dict[str, Any]] = {}
        for task in tasks:
            if observer is not None:
                observer.on_dispatch(task)
            try:
                done[task.key] = self.worker(task)
            except Exception as exc:  # deterministic failure: no retry
                reason = f"{type(exc).__name__}: {exc}"
                outcome.errors[task.key] = reason
                if observer is not None:
                    observer.on_task_failed(task, reason)
            else:
                if observer is not None:
                    observer.on_task_done(task)
        return done

    def _run_parallel(self, tasks: List[SweepTask],
                      outcome: SweepOutcome) -> Dict[str, Dict[str, Any]]:
        try:
            executor = ProcessPoolExecutor(max_workers=self.jobs)
        except Exception as exc:  # pool unavailable on this platform
            outcome.errors["__pool__"] = (f"pool unavailable, running "
                                          f"serially: {exc}")
            outcome.workers = 1
            return self._run_serial(tasks, outcome)

        done: Dict[str, Dict[str, Any]] = {}
        remaining = list(tasks)
        rebuilds = 0
        try:
            while remaining:
                crashed = self._drain_pool(executor, remaining, done, outcome)
                if not crashed:
                    break
                # A worker died; unfinished tasks may retry on a new pool.
                remaining = [t for t in remaining
                             if t.key not in done
                             and t.key not in outcome.errors]
                if not remaining:
                    break
                executor.shutdown(wait=False)
                rebuilds += 1
                outcome.retries += 1
                outcome.rebuilds += 1
                if self.observer is not None:
                    self.observer.on_rebuild(rebuilds)
                if rebuilds > self.max_retries:
                    outcome.errors["__pool__"] = (
                        f"worker pool broke {rebuilds} times; finishing "
                        f"{len(remaining)} point(s) serially")
                    done.update(self._run_serial(remaining, outcome))
                    return done
                executor = ProcessPoolExecutor(max_workers=self.jobs)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return done

    def _drain_pool(self, executor: ProcessPoolExecutor,
                    tasks: List[SweepTask],
                    done: Dict[str, Dict[str, Any]],
                    outcome: SweepOutcome) -> bool:
        """Submit ``tasks`` and collect results.  Returns True when the
        pool broke (caller decides whether to rebuild).

        With an observer attached, the wait loop wakes every
        ``observer.heartbeat_interval`` seconds to report progress; the
        stall contract is unchanged — the outstanding points are
        cancelled once *no* point has completed for ``task_timeout``
        seconds (heartbeats surface the stall while it develops).
        """
        observer = self.observer
        futures: Dict[Future[Dict[str, Any]], SweepTask] = {}
        try:
            for task in tasks:
                if observer is not None:
                    observer.on_dispatch(task)
                futures[executor.submit(self.worker, task)] = task
        except BrokenProcessPool:
            return True
        quantum = self.task_timeout
        if observer is not None:
            beat = float(observer.heartbeat_interval)
            quantum = beat if quantum is None else min(beat, quantum)
        not_done = set(futures)
        last_progress = time.monotonic()
        while not_done:
            finished, not_done = wait(not_done, timeout=quantum,
                                      return_when=FIRST_COMPLETED)
            if not finished:
                waited = time.monotonic() - last_progress
                stalled_out = (self.task_timeout is not None
                               and (observer is None
                                    or waited >= self.task_timeout))
                if not stalled_out:
                    # Heartbeat wake-up, not (yet) a stall.
                    if observer is not None:
                        observer.on_heartbeat(
                            done=len(futures) - len(not_done),
                            total=len(futures),
                            inflight=len(not_done), waited=waited)
                    continue
                # No point completed within the timeout window: stall.
                stalled = [futures[fut].key for fut in not_done]
                for fut in not_done:
                    fut.cancel()
                    key = futures[fut].key
                    outcome.errors[key] = (
                        f"timeout: no completion within "
                        f"{self.task_timeout}s; point cancelled")
                if observer is not None:
                    observer.on_stall(stalled, self.task_timeout)
                return False
            last_progress = time.monotonic()
            for fut in finished:
                task = futures[fut]
                try:
                    done[task.key] = fut.result()
                except BrokenProcessPool:
                    return True
                except Exception as exc:
                    reason = f"{type(exc).__name__}: {exc}"
                    outcome.errors[task.key] = reason
                    if observer is not None:
                        observer.on_task_failed(task, reason)
                else:
                    if observer is not None:
                        observer.on_task_done(task)
        return False
