"""Deterministic identity for sweep points (the task-key contract).

Every simulation a sweep runs — a (workload, machine, mechanism-config)
point — is identified by a **task key**: the SHA-256 of a canonical JSON
rendering of everything that determines the simulation's outcome:

* the workload spec (including its generator ``seed``) and trace length,
* the task kind (``baseline`` / ``ssmt`` / ``oracle`` / ``potential``),
* the full :class:`~repro.core.ssmt.SSMTConfig` (or
  :class:`~repro.core.oracle.PotentialConfig`) when one applies,
* the full :class:`~repro.uarch.config.MachineConfig`,
* the :class:`~repro.branch.zoo.config.PredictorConfig` when the point
  runs a zoo baseline predictor (``None`` = the paper's hybrid),
* the :class:`~repro.kernel.sampling.SampleSpec` when the point runs
  sampled simulation (extrapolated results are never interchangeable
  with exact ones), and
* :data:`CODE_SCHEMA_VERSION`.

Two tasks with equal keys produce bit-identical result payloads, so a
key can safely index an on-disk result cache
(:class:`~repro.parallel.cache.ResultCache`): re-running a sweep skips
every point whose key is already cached.  The display ``label`` is
deliberately **excluded** — it names a grid column, not a simulation —
so two grids that run the same point under different labels share one
cache entry.  The ``kernel`` field is excluded for the same reason:
the batched kernel is bit-identical to the scalar loop by contract, so
a scalar run can satisfy a batched request from cache and vice versa.

:data:`CODE_SCHEMA_VERSION` must be bumped whenever simulator semantics
change (timing model, workload generator, mechanism behaviour, or the
result payload layout), invalidating every previously cached result at
once.  See ``docs/telemetry.md`` ("Parallel sweeps").
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core.oracle import PotentialConfig
from repro.core.ssmt import SSMTConfig
from repro.uarch.config import TABLE3_BASELINE, MachineConfig

if TYPE_CHECKING:  # pragma: no cover — keeps repro.branch.zoo unimported
    from repro.branch.zoo.config import PredictorConfig

# Re-exported from their canonical (leaf) home so the many existing
# importers of ``taskkey.CODE_SCHEMA_VERSION`` keep working, and so the
# task-key module remains the one-stop shop for cache-identity rules.
# SCHEMA_REGISTRY maps schema name -> version -> owning module; every
# artifact module imports its schema marker from it (``repro lint``
# rule LINT020 rejects stray literals).
from repro.schemas import (  # noqa: F401  (re-exports)
    CODE_SCHEMA_VERSION,
    SCHEMA_REGISTRY,
    schema_string,
)

#: Simulations a sweep point can request.
TASK_KINDS = ("baseline", "ssmt", "oracle", "potential")

#: Retire-loop kernels a task may select.  Mirrors
#: ``repro.kernel.KERNEL_NAMES`` without importing :mod:`repro.kernel`
#: (task construction must stay import-light).
KERNELS = ("scalar", "batched")


def _jsonable(value: Any) -> Any:
    """Recursively convert dataclasses / enums / tuples to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {str(_jsonable(k)): _jsonable(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def canonical_json(payload: Any) -> str:
    """The canonical rendering task keys are hashed over: sorted keys,
    no whitespace, enums by name, tuples as arrays."""
    return json.dumps(_jsonable(payload), sort_keys=True,
                      separators=(",", ":"))


@dataclass(frozen=True)
class SweepTask:
    """One simulation of a sweep grid.

    ``kind`` selects the worker behaviour:

    * ``baseline`` — the Table 3 machine with the hardware hybrid
      predictor, no mechanism (the speed-up denominator),
    * ``ssmt`` — the full dynamic mechanism under ``config``,
    * ``oracle`` — perfect direction/target prediction (§1 headroom),
    * ``potential`` — Figure 6's oracle difficult-path prediction under
      ``potential``.
    """

    benchmark: str
    instructions: int
    kind: str = "ssmt"
    #: display/grouping name for the grid column; NOT part of the key
    label: str = ""
    config: Optional[SSMTConfig] = None
    potential: Optional[PotentialConfig] = None
    machine: MachineConfig = TABLE3_BASELINE
    #: zoo baseline direction predictor; ``None`` is the paper's hybrid
    #: (the default path never imports :mod:`repro.branch.zoo`)
    predictor: Optional["PredictorConfig"] = None
    #: retire-loop kernel; NOT part of the key — ``batched`` is
    #: bit-identical to ``scalar`` by contract, so both share one cache
    #: entry (``tests/test_kernel.py`` enforces payload identity)
    kernel: str = "scalar"
    #: sampled-simulation spec (:class:`repro.kernel.sampling.SampleSpec`);
    #: IS part of the key — sampled results are extrapolations, never
    #: interchangeable with exact ones
    sample: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(f"unknown task kind {self.kind!r}; "
                             f"expected one of {TASK_KINDS}")
        if self.kernel not in KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}; "
                             f"expected one of {KERNELS}")
        if self.sample is not None:
            if self.kind not in ("baseline", "ssmt"):
                raise ValueError(
                    "sampled simulation applies to baseline/ssmt tasks "
                    f"only, not {self.kind!r}")
            if not (dataclasses.is_dataclass(self.sample)
                    and not isinstance(self.sample, type)):
                raise ValueError("sample must be a SampleSpec instance "
                                 "(or None for an exact run)")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        if self.kind == "ssmt" and self.config is None:
            object.__setattr__(self, "config", SSMTConfig())
        if self.kind == "potential" and self.potential is None:
            object.__setattr__(self, "potential", PotentialConfig())
        if self.predictor is not None:
            if self.kind == "oracle":
                # Oracle direction prediction ignores the hardware
                # predictor; normalising to None keeps the task key (and
                # the cache entry) shared across baselines.
                object.__setattr__(self, "predictor", None)
            elif not (dataclasses.is_dataclass(self.predictor)
                      and not isinstance(self.predictor, type)):
                raise ValueError("predictor must be a PredictorConfig "
                                 "instance (or None for the paper hybrid)")
        if not self.label:
            object.__setattr__(self, "label", self.kind)

    def identity(self) -> Dict[str, Any]:
        """Everything that determines the simulation outcome."""
        from repro.workloads import benchmark_spec

        return {
            "schema_version": CODE_SCHEMA_VERSION,
            "kind": self.kind,
            "benchmark": self.benchmark,
            "workload_spec": _jsonable(benchmark_spec(self.benchmark)),
            "instructions": self.instructions,
            "config": _jsonable(self.config),
            "potential": _jsonable(self.potential),
            "machine": _jsonable(self.machine),
            "predictor": _jsonable(self.predictor),
            "sample": _jsonable(self.sample),
        }

    @property
    def key(self) -> str:
        """The stable task key (SHA-256 hex of the canonical identity)."""
        return task_key(self)


def task_key(task: SweepTask) -> str:
    """Compute a :class:`SweepTask`'s deterministic cache key."""
    blob = canonical_json(task.identity()).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
