"""The per-point worker: one simulation in, one plain-JSON payload out.

:func:`run_task` is the function the process pool executes.  It must
stay module-level (picklable by reference) and must return only
JSON-native data, because the same payload is (a) shipped back over the
pool's pipe, (b) persisted by the result cache, and (c) compared
bit-for-bit across serial, parallel, and cached executions.  To
guarantee (c), every freshly computed payload is normalised through a
JSON round-trip before it leaves the worker — a result that was never
cached is byte-identical to one that was.

The payload is ``RunReport``-compatible: its ``config``/``timing``/
``metrics`` sections carry the same shapes (and, for ``metrics``, the
same top-level prefixes) as ``repro.telemetry``'s per-run report, so
sweep-level aggregation and single-run tooling read the same fields.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from typing import Any, Dict, Optional

from repro.branch.unit import BranchPredictorComplex, oracle_complex
from repro.core.oracle import run_potential
from repro.core.ssmt import SSMTEngine, run_ssmt
from repro.parallel.cache import POINT_SCHEMA
from repro.parallel.taskkey import SweepTask
from repro.uarch.timing import OoOTimingModel, TimingResult
from repro.workloads import benchmark_trace


def engine_metrics(engine: SSMTEngine) -> Dict[str, Any]:
    """A serializable snapshot of every engine structure's statistics,
    under the telemetry layer's prefixes (``path_cache``, ``builder``,
    ``spawn``, ``prediction_cache``, ``microram``)."""
    return {
        "path_cache": dict(
            engine.path_cache.stats.as_dict(),
            occupancy=len(engine.path_cache),
            difficult_entries=engine.path_cache.difficult_count(),
        ),
        "builder": engine.builder.stats.as_dict(),
        "spawn": engine.spawner.stats.as_dict(),
        "prediction_cache": engine.prediction_cache.stats.as_dict(),
        "microram": engine.microram.as_dict(),
        "prediction_kinds": dict(engine.prediction_kind_counts),
        "microthread_correct": engine.correct_microthread_predictions,
        "microthread_incorrect": engine.incorrect_microthread_predictions,
        "throttled_paths": engine.throttled_paths,
    }


def point_ipc(payload: Dict[str, Any]) -> float:
    """Full-precision IPC recomputed from the payload's integer counts
    (the rounded ``timing.ipc`` field is for humans)."""
    timing = payload["timing"]
    cycles = timing["cycles"]
    return timing["instructions"] / cycles if cycles else 0.0


def _direction_complex(task: SweepTask) -> BranchPredictorComplex:
    """The predictor complex a task requests.

    The zoo import is deliberately deferred to this branch: a task with
    ``predictor=None`` (the paper's hybrid) never imports
    :mod:`repro.branch.zoo`, keeping the default path zero-cost
    (``tests/test_zoo_zero_cost.py`` pins this down).
    """
    if task.predictor is None:
        return BranchPredictorComplex()
    from repro.branch.zoo import make_complex

    return make_complex(task.predictor)


def run_task(task: SweepTask, telemetry: Optional[Any] = None,
             ) -> Dict[str, Any]:
    """Simulate one sweep point and return its result payload.

    ``telemetry`` (an optional :class:`~repro.telemetry.session.
    TelemetrySession`) is attached to SSMT-kind points only — the other
    kinds run bare timing models with no hook sites.  Telemetry is
    strictly observational, so the returned payload is bit-identical
    with or without it.
    """
    trace = benchmark_trace(task.benchmark, task.instructions)
    metrics: Optional[Dict[str, Any]] = None
    result: TimingResult
    if task.kind == "baseline":
        if task.sample is not None:
            from repro.kernel.sampling import run_sampled

            result = run_sampled(trace, _direction_complex(task),
                                 task.sample, machine=task.machine)
        elif task.kernel == "batched":
            from repro.kernel.batched import BatchedOoOTimingModel

            result = BatchedOoOTimingModel(task.machine).run(
                trace, _direction_complex(task))
        else:
            result = OoOTimingModel(task.machine).run(
                trace, _direction_complex(task))
    elif task.kind == "oracle":
        result = OoOTimingModel(task.machine).run(trace, oracle_complex())
    elif task.kind == "potential":
        result, _ = run_potential(trace, task.potential,
                                  machine=task.machine,
                                  predictor=_direction_complex(task))
    else:  # ssmt (validated by SweepTask.__post_init__)
        result, engine = run_ssmt(trace, task.config, machine=task.machine,
                                  predictor=_direction_complex(task),
                                  telemetry=telemetry,
                                  kernel=task.kernel, sample=task.sample)
        metrics = engine_metrics(engine)
    payload: Dict[str, Any] = {
        "schema": POINT_SCHEMA,
        "task_key": task.key,
        "kind": task.kind,
        "label": task.label,
        "benchmark": task.benchmark,
        "instructions": task.instructions,
        "config": asdict(task.config) if task.config is not None else None,
        "machine": asdict(task.machine),
        "predictor": (asdict(task.predictor)
                      if task.predictor is not None else None),
        "timing": result.as_dict(),
        "metrics": metrics,
    }
    if task.sample is not None:
        # Sampled results are extrapolations: marked explicitly, never
        # shaped like (or cached as) exact payloads — the sample spec is
        # part of the task key.
        payload["sampled"] = True
        payload["sample"] = result.sample
    # Normalise to JSON-native types (tuples -> lists, etc.) so fresh,
    # pooled, and cached payloads compare bit-identically.
    normalised: Dict[str, Any] = json.loads(
        json.dumps(payload, sort_keys=True))
    return normalised


def run_task_traced(task: SweepTask, trace_dir: str) -> Dict[str, Any]:
    """:func:`run_task` plus a per-task ``repro.obs/1`` trace shard.

    Used by traced sweeps via ``functools.partial(run_task_traced,
    trace_dir=...)`` — both pieces pickle by reference/value, so the
    pool ships it like the plain worker.  The :mod:`repro.obs` import is
    deferred into the body: an untraced sweep (the default worker)
    never pays for it, which the zero-cost subprocess test pins down.

    The shard is a *side artifact* keyed by the task's content hash
    (written into ``trace_dir``); the returned payload is byte-identical
    to the untraced worker's, so cached results and task keys are
    unaffected.
    """
    from repro.obs import ObsSession
    from repro.obs.events import PH_COMPLETE
    from repro.obs.sweepobs import write_shard

    session = ObsSession(sample_every=0, trace_spans=True)
    wall_start = time.monotonic()
    payload = run_task(task, telemetry=session)
    dur_us = (time.monotonic() - wall_start) * 1e6
    session.recorder.wall("task_run", ph=PH_COMPLETE, dur=dur_us, ts=0.0,
                          label=task.label, kind=task.kind)
    write_shard(trace_dir, task.key, session.recorder.sorted_events(),
                context={"label": task.label, "kind": task.kind,
                         "benchmark": task.benchmark,
                         "instructions": task.instructions},
                dropped=session.recorder.total_dropped)
    return payload
