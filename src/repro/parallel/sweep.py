"""Grid construction and sweep-level result merging.

:func:`build_grid` expands a (benchmarks x machine-widths x config
settings) grid into :class:`SweepTask` points, one ``baseline`` task per
(benchmark, machine) so every mechanism point has a speed-up
denominator.  :func:`merge_sweep` aggregates the per-point payloads the
runner returns into one versioned artifact.

Merged-report schema (``repro.sweep/1``)::

    {
      "schema": "repro.sweep/1",
      "context": {...},            # grid description + runner accounting
      "points": [{...}, ...],      # per-point payloads (+ "speedup")
      "aggregates": {              # per config label, over benchmarks
        "<label>": {"mean_speedup": float, "geomean_speedup": float,
                     "per_benchmark": {bench: speedup}},
      },
      "failures": {task_key: reason}
    }

``aggregates`` doubles as the BENCH-style trajectory row set: the CLI
writes it through ``repro.telemetry.write_bench_json`` so sweep results
land in the same ``repro.bench/1`` trajectory as the other benchmarks.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.core.ssmt import SSMTConfig
from repro.parallel.taskkey import SweepTask, canonical_json
from repro.parallel.worker import point_ipc
from repro.schemas import schema_string
from repro.uarch.config import TABLE3_BASELINE, MachineConfig

if TYPE_CHECKING:  # pragma: no cover — keeps repro.branch.zoo unimported
    from repro.branch.zoo.config import PredictorConfig

#: Schema of the merged sweep-level artifact.
SWEEP_SCHEMA = schema_string("repro.sweep", 1)


def parse_knob_value(knob: str, raw: str) -> Any:
    """Parse a CLI string for an :class:`SSMTConfig` field by its type."""
    for f in dataclasses.fields(SSMTConfig):
        if f.name == knob:
            default = getattr(SSMTConfig(), knob)
            if isinstance(default, bool):
                lowered = raw.strip().lower()
                if lowered in ("1", "true", "yes", "on"):
                    return True
                if lowered in ("0", "false", "no", "off"):
                    return False
                raise ValueError(f"{knob}: not a boolean: {raw!r}")
            if isinstance(default, int):
                return int(raw)
            if isinstance(default, float):
                return float(raw)
            return raw
    raise ValueError(f"SSMTConfig has no knob {knob!r}")


def build_grid(
    benchmarks: Sequence[str],
    instructions: int,
    base_config: Optional[SSMTConfig] = None,
    knob: Optional[str] = None,
    values: Sequence[Any] = (),
    widths: Sequence[int] = (),
    machine: MachineConfig = TABLE3_BASELINE,
    predictor: Optional["PredictorConfig"] = None,
    kernel: str = "scalar",
    sample: Optional[Any] = None,
) -> List[SweepTask]:
    """Expand benchmarks x widths x knob-settings into sweep tasks.

    With no ``knob`` the grid holds one default-config point per
    (benchmark, machine); with no ``widths`` the given ``machine`` is
    used as-is.  Every (benchmark, machine) pair also gets a
    ``baseline`` task (deduped by key if repeated across grids).
    ``predictor`` swaps the hardware direction predictor of every point
    (baselines included) for a zoo baseline; ``None`` keeps the paper's
    hybrid.  ``kernel``/``sample`` select the retire-loop kernel and
    optional sampled simulation for every baseline/ssmt point (see
    :mod:`repro.kernel`).
    """
    base_config = base_config or SSMTConfig()
    if knob is not None and not hasattr(base_config, knob):
        raise ValueError(f"SSMTConfig has no knob {knob!r}")
    machines: List[Tuple[str, MachineConfig]] = (
        [(f"w={w}", machine.scaled(fetch_width=w, issue_width=w,
                                   retire_width=w)) for w in widths]
        if widths else [("", machine)])
    settings: List[Tuple[str, SSMTConfig]] = (
        [(f"{knob}={v}", dataclasses.replace(base_config, **{knob: v}))
         for v in values]
        if knob is not None else [("ssmt", base_config)])

    tasks: List[SweepTask] = []
    for mlabel, mconfig in machines:
        for name in benchmarks:
            blabel = "|".join(part for part in ("baseline", mlabel) if part)
            tasks.append(SweepTask(kind="baseline", benchmark=name,
                                   instructions=instructions,
                                   label=blabel, machine=mconfig,
                                   predictor=predictor,
                                   kernel=kernel, sample=sample))
        for slabel, config in settings:
            label = "|".join(part for part in (slabel, mlabel) if part)
            for name in benchmarks:
                tasks.append(SweepTask(kind="ssmt", benchmark=name,
                                       instructions=instructions,
                                       label=label, config=config,
                                       machine=mconfig,
                                       predictor=predictor,
                                       kernel=kernel, sample=sample))
    return tasks


def _baseline_index(points: Sequence[Dict[str, Any]]) -> Dict[Tuple[str, str, int], float]:
    """Baseline IPC keyed by (benchmark, canonical machine, length)."""
    out: Dict[Tuple[str, str, int], float] = {}
    for p in points:
        if p["kind"] == "baseline":
            out[(p["benchmark"], canonical_json(p["machine"]),
                 p["instructions"])] = point_ipc(p)
    return out


def merge_sweep(results: Sequence[Optional[Dict[str, Any]]],
                context: Optional[Dict[str, Any]] = None,
                errors: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
    """Aggregate runner results into one ``repro.sweep/1`` artifact.

    Each non-baseline point gains a ``speedup`` field (its IPC over the
    matching baseline's, when that baseline is present in the sweep).
    Aggregates are computed per label over benchmarks with a speed-up.
    """
    points: List[Dict[str, Any]] = [dict(r) for r in results
                                    if r is not None]
    baselines = _baseline_index(points)
    per_label: Dict[str, Dict[str, float]] = {}
    for p in points:
        if p["kind"] == "baseline":
            continue
        base_ipc = baselines.get((p["benchmark"],
                                  canonical_json(p["machine"]),
                                  p["instructions"]))
        if base_ipc:
            p["speedup"] = round(point_ipc(p) / base_ipc, 6)
            per_label.setdefault(p["label"], {})[p["benchmark"]] = \
                p["speedup"]

    aggregates: Dict[str, Dict[str, Any]] = {}
    for label in sorted(per_label):
        speedups = per_label[label]
        values = list(speedups.values())
        aggregates[label] = {
            "mean_speedup": round(statistics.mean(values), 6),
            "geomean_speedup": round(statistics.geometric_mean(values), 6),
            "per_benchmark": dict(sorted(speedups.items())),
        }

    return {
        "schema": SWEEP_SCHEMA,
        "context": dict(context or {}),
        "points": points,
        "aggregates": aggregates,
        "failures": dict(errors or {}),
    }
