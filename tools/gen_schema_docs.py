#!/usr/bin/env python3
"""Render ``docs/schemas.md`` from the schema registry.

The page is *generated*: every schema in
``repro.schemas.SCHEMA_REGISTRY`` gets one section with its name,
current version, owning (producing) module, one-line description and
top-level field table, all sourced from ``repro.schemas.SCHEMA_INFO``.
Hand-edits do not survive; change the registry and re-run.

The companion freshness gate in ``tools/check_docs.py`` re-renders the
page in memory and fails CI when the committed file differs — so a new
schema, a renamed field or a version bump cannot land without its
documentation.

Usage::

    PYTHONPATH=src python tools/gen_schema_docs.py            # write
    PYTHONPATH=src python tools/gen_schema_docs.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUTPUT = REPO / "docs" / "schemas.md"

HEADER = """\
# Artifact schemas

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with: PYTHONPATH=src python tools/gen_schema_docs.py
     (CI fails when this page is stale; see tools/check_docs.py) -->

Every machine-readable artifact the toolkit writes carries a
`"schema": "<name>/<version>"` marker, registered in
`repro.schemas.SCHEMA_REGISTRY` and described in
`repro.schemas.SCHEMA_INFO` — the single source of truth this page is
rendered from.  `repro lint` enforces the registry from the other side:
LINT020 rejects stray schema literals in the code, LINT021 requires
every registered marker to be documented, and LINT022 gates payload
drift behind `CODE_SCHEMA_VERSION` bumps.
"""


def render() -> str:
    from repro.schemas import SCHEMA_INFO, SCHEMA_REGISTRY, schema_string

    lines = [HEADER]
    lines.append("| Schema | Version | Producer |")
    lines.append("| --- | --- | --- |")
    for name in sorted(SCHEMA_REGISTRY):
        version = max(SCHEMA_REGISTRY[name])
        producer = SCHEMA_REGISTRY[name][version]
        anchor = name.replace(".", "")
        lines.append(f"| [`{name}`](#{anchor}) | {version} | "
                     f"`{producer}` |")
    lines.append("")

    for name in sorted(SCHEMA_REGISTRY):
        info = SCHEMA_INFO.get(name)
        version = max(SCHEMA_REGISTRY[name])
        producer = SCHEMA_REGISTRY[name][version]
        lines.append(f"## `{name}`")
        lines.append("")
        lines.append(f"**Marker:** `{schema_string(name)}` — "
                     f"**produced by** `{producer}`")
        lines.append("")
        if info is None:
            lines.append("*(no SCHEMA_INFO entry — add one in "
                         "`repro/schemas.py`)*")
            lines.append("")
            continue
        lines.append(str(info["description"]))
        lines.append("")
        lines.append("| Field | Meaning |")
        lines.append("| --- | --- |")
        for field, meaning in info["fields"].items():
            lines.append(f"| `{field}` | {meaning} |")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if docs/schemas.md is stale instead "
                             "of writing it")
    args = parser.parse_args(argv)
    sys.path.insert(0, str(REPO / "src"))

    content = render()
    if args.check:
        on_disk = OUTPUT.read_text() if OUTPUT.exists() else ""
        if on_disk != content:
            print("docs/schemas.md is stale; regenerate with:\n"
                  "  PYTHONPATH=src python tools/gen_schema_docs.py")
            return 1
        print("docs/schemas.md is current")
        return 0
    OUTPUT.write_text(content)
    print(f"wrote {OUTPUT.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
