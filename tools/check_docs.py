#!/usr/bin/env python3
"""Docs consistency checks, run as a CI job (and runnable locally).

Eight checks keep the documentation honest as the code moves:

1. every ``docs/*.md`` file is linked from the README (no orphan docs),
   and every ``docs/...`` link in the README resolves to a real file;
2. every ``repro <subcommand>`` named anywhere in the docs or README is
   a real CLI subcommand (and every real subcommand is documented
   somewhere);
3. the bash quickstart fences in the README and ``docs/performance.md``
   only invoke known subcommands with flags the parser actually accepts
   (checked by dry-parsing each ``python -m repro ...`` line);
4. the lint rule catalogue and ``docs/lint.md`` agree: every ``LINT*``
   id in ``repro.lint.rules.LINT_RULES`` appears in the doc, and every
   ``LINT*`` id the doc mentions exists in the catalogue;
5. every registered predictor-zoo scheme
   (``repro.branch.zoo.registered_schemes``) appears in
   ``docs/predictors.md``, and every arena baseline label is documented
   there too;
6. every event name in the observability taxonomy
   (``repro.obs.events.EVENT_CATALOG``) is documented in
   ``docs/observability.md``, and every backticked event name that doc
   mentions in its taxonomy tables exists in the catalogue;
7. ``docs/schemas.md`` is exactly what ``tools/gen_schema_docs.py``
   renders from ``repro.schemas`` — a new schema, field or version
   cannot land without regenerating the page;
8. every ``--flag`` the docs mention exists on some CLI subcommand, and
   whenever a flag appears on the same line as ``repro <subcommand>``
   it is diffed against that subcommand's live parser options — so a
   renamed or removed flag goes red in CI instead of rotting in prose.

Exits non-zero with a list of violations.

Usage::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
README = REPO / "README.md"
DOCS = REPO / "docs"


def _cli_subcommands() -> set:
    from repro import cli
    return set(cli._COMMANDS)


def check_docs_linked(errors: list) -> None:
    readme = README.read_text()
    linked = set(re.findall(r"\(docs/([\w.-]+\.md)\)", readme))
    on_disk = {p.name for p in DOCS.glob("*.md")}
    for name in sorted(on_disk - linked):
        errors.append(f"docs/{name} exists but is not linked from README.md")
    for name in sorted(linked - on_disk):
        errors.append(f"README.md links docs/{name}, which does not exist")


def _mentioned_subcommands(text: str) -> set:
    # Matches "repro <word>" in prose and "python -m repro <word>" in
    # fences; "--flag" arguments and placeholders like <command> don't
    # capture, and the lookbehind keeps Python "from repro import ..."
    # lines from reading as a subcommand.
    return set(re.findall(r"(?<!from )\brepro ([a-z][a-z0-9_-]*)\b", text))


def check_subcommands_exist(errors: list) -> None:
    real = _cli_subcommands()
    mentioned: dict = {}
    for path in [README, *sorted(DOCS.glob("*.md"))]:
        for sub in _mentioned_subcommands(path.read_text()):
            mentioned.setdefault(sub, []).append(path.name)
    for sub, sources in sorted(mentioned.items()):
        if sub not in real:
            errors.append(
                f"'repro {sub}' is documented in {', '.join(sources)} but "
                f"is not a CLI subcommand (have: {', '.join(sorted(real))})")
    for sub in sorted(real - set(mentioned)):
        errors.append(f"CLI subcommand 'repro {sub}' is documented nowhere "
                      f"in README.md or docs/")


def _bash_fences(text: str) -> list:
    return re.findall(r"```bash\n(.*?)```", text, flags=re.DOTALL)


def _repro_invocations(fence: str) -> list:
    """Complete ``python -m repro ...`` command lines (joining \\ splits)."""
    lines: list = []
    for raw in fence.splitlines():
        line = raw.split("#")[0].rstrip()
        if lines and lines[-1].endswith("\\"):
            lines[-1] = lines[-1][:-1].rstrip() + " " + line.strip()
        elif line.strip():
            lines.append(line.strip())
    return [ln for ln in lines if ln.startswith("python -m repro ")]


def check_quickstart_fences(errors: list) -> None:
    from repro import cli

    parser = cli.build_parser() if hasattr(cli, "build_parser") else None
    for path in (README, DOCS / "performance.md"):
        for fence in _bash_fences(path.read_text()):
            for command in _repro_invocations(fence):
                argv = command.split()[3:]     # strip "python -m repro"
                argv = [a for a in argv if not a.startswith("<")]
                if parser is None:
                    continue
                try:
                    parser.parse_args(argv)
                except SystemExit:
                    errors.append(
                        f"{path.name}: quickstart line does not parse "
                        f"against the CLI: {command!r}")


def check_lint_rules_documented(errors: list) -> None:
    from repro.lint.rules import LINT_RULES

    doc_path = DOCS / "lint.md"
    if not doc_path.exists():
        errors.append("docs/lint.md does not exist but the LINT rule "
                      "catalogue does")
        return
    doc = doc_path.read_text()
    mentioned = set(re.findall(r"\bLINT\d{3}\b", doc))
    for rule in sorted(set(LINT_RULES) - mentioned):
        errors.append(f"lint rule {rule} is not documented in docs/lint.md")
    for rule in sorted(mentioned - set(LINT_RULES)):
        errors.append(f"docs/lint.md mentions {rule}, which is not in "
                      f"repro.lint.rules.LINT_RULES")


def check_zoo_schemes_documented(errors: list) -> None:
    from repro.branch.zoo import ARENA_BASELINES, registered_schemes

    doc_path = DOCS / "predictors.md"
    if not doc_path.exists():
        errors.append("docs/predictors.md does not exist but the predictor "
                      "zoo registry does")
        return
    doc = doc_path.read_text()
    for scheme in registered_schemes():
        if not re.search(rf"`{re.escape(scheme)}`", doc):
            errors.append(f"zoo scheme '{scheme}' is registered but not "
                          f"documented in docs/predictors.md")
    for label in sorted(ARENA_BASELINES):
        if f"`{label}`" not in doc:
            errors.append(f"arena baseline '{label}' is not documented in "
                          f"docs/predictors.md")


def check_obs_events_documented(errors: list) -> None:
    from repro.obs.events import EVENT_CATALOG

    doc_path = DOCS / "observability.md"
    if not doc_path.exists():
        errors.append("docs/observability.md does not exist but the "
                      "repro.obs event catalogue does")
        return
    doc = doc_path.read_text()
    # taxonomy rows look like "| `name` | category | phase | ..."
    mentioned = set(re.findall(
        r"^\| `([a-z0-9_]+)` \| \w+ \| (?:instant|span|counter) \|",
        doc, flags=re.M))
    for name in sorted(set(EVENT_CATALOG) - mentioned):
        errors.append(f"obs event '{name}' is in EVENT_CATALOG but not "
                      f"documented in docs/observability.md")
    for name in sorted(mentioned - set(EVENT_CATALOG)):
        errors.append(f"docs/observability.md documents obs event "
                      f"'{name}', which is not in EVENT_CATALOG")


def check_schema_docs_fresh(errors: list) -> None:
    """docs/schemas.md must match what the generator renders today."""
    sys.path.insert(0, str(REPO / "tools"))
    import gen_schema_docs

    on_disk = gen_schema_docs.OUTPUT
    if not on_disk.exists():
        errors.append("docs/schemas.md does not exist; generate it with "
                      "'PYTHONPATH=src python tools/gen_schema_docs.py'")
        return
    if on_disk.read_text() != gen_schema_docs.render():
        errors.append("docs/schemas.md is stale vs repro.schemas; "
                      "regenerate with 'PYTHONPATH=src python "
                      "tools/gen_schema_docs.py'")


def _subcommand_options() -> dict:
    """Subcommand -> set of option strings, from the live parser."""
    from repro import cli

    parser = cli.build_parser()
    out: dict = {}
    for action in parser._actions:
        if hasattr(action, "choices") and isinstance(action.choices, dict):
            for name, sub in action.choices.items():
                out[name] = {opt for a in sub._actions
                             for opt in a.option_strings}
    return out


def check_cli_flags_documented(errors: list) -> None:
    """Diff documented ``--flags`` against the live ``--help`` surface.

    Two passes over README + docs/: (a) a flag named on the same line as
    ``repro <subcommand>`` must be an option of *that* subcommand;
    (b) any other ``--flag`` token must exist on at least one
    subcommand (catches flags documented in prose tables away from an
    invocation).  Long flags only — single-dash short options are not
    used by the CLI.
    """
    options = _subcommand_options()
    all_flags = set().union(*options.values()) if options else set()
    flag_re = re.compile(r"(?<![\w/-])--[a-z][a-z0-9-]*\b")
    # Same-line association: "repro <sub> ... --flag" up to the end of
    # the inline-code span / parenthetical the invocation sits in —
    # flags past a closing backtick or paren belong to other prose.
    line_re = re.compile(r"\brepro ([a-z][a-z0-9_-]*)\b([^\n`)]*)")

    def canon(flag: str) -> str:
        base = flag.split("=")[0]
        # BooleanOptionalAction: --no-resume is the negative of --resume.
        return "--" + base[5:] if base.startswith("--no-") else base

    for path in [README, *sorted(DOCS.glob("*.md"))]:
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "repro" not in line:
                continue  # other tools' flags (pytest, ruff) are not ours
            matched_spans: list = []
            for m in line_re.finditer(line):
                sub, rest = m.group(1), m.group(2)
                if sub not in options:
                    continue  # check_subcommands_exist reports these
                for flag in flag_re.findall(rest):
                    if canon(flag) not in options[sub]:
                        errors.append(
                            f"{path.name}:{lineno}: flag '{flag}' is "
                            f"documented for 'repro {sub}' but its "
                            f"--help does not accept it")
                matched_spans.append(m.span(2))
            for m in flag_re.finditer(line):
                if any(a <= m.start() < b for a, b in matched_spans):
                    continue
                if canon(m.group(0)) not in all_flags:
                    errors.append(
                        f"{path.name}:{lineno}: flag '{m.group(0)}' is "
                        f"documented but no CLI subcommand accepts it")


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    errors: list = []
    check_docs_linked(errors)
    check_subcommands_exist(errors)
    check_quickstart_fences(errors)
    check_lint_rules_documented(errors)
    check_zoo_schemes_documented(errors)
    check_obs_events_documented(errors)
    check_schema_docs_fresh(errors)
    check_cli_flags_documented(errors)
    if errors:
        print("docs check failed:")
        for error in errors:
            print(f"  - {error}")
        return 1
    print("docs check passed: links, subcommands, quickstart fences, the "
          "lint rule catalogue, the obs event taxonomy, the generated "
          "schema reference and the documented CLI flags are consistent "
          "with the code")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
